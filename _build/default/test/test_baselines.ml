(* Tests for the baselines: FloodMin in its home model, and the naive
   strawman outside it. *)

open Ssg_util
open Ssg_rounds
open Ssg_adversary
open Ssg_baselines
open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rounds_for () =
  check_int "f=0 k=1" 1 (Floodmin.rounds_for ~f:0 ~k:1);
  check_int "f=5 k=2" 3 (Floodmin.rounds_for ~f:5 ~k:2);
  check_int "f=6 k=2" 4 (Floodmin.rounds_for ~f:6 ~k:2);
  check_int "f=6 k=7" 1 (Floodmin.rounds_for ~f:6 ~k:7);
  check "bad k" true
    (try ignore (Floodmin.rounds_for ~f:1 ~k:0); false
     with Invalid_argument _ -> true)

let test_floodmin_failure_free () =
  (* No crashes: everyone decides the global minimum after R rounds. *)
  let adv = Build.synchronous ~n:6 in
  let alg = Floodmin.make ~rounds:1 in
  let r = Runner.run_packed alg adv in
  check "terminated" true (Metrics.termination r.Runner.outcome);
  Alcotest.(check (list int)) "global min" [ 0 ]
    (Executor.decision_values r.Runner.outcome);
  Alcotest.(check (option int)) "decided at round 1" (Some 1)
    (Metrics.last_decision_round r.Runner.outcome)

let test_floodmin_crash_model_k_agreement () =
  (* The classical guarantee: with at most f crashes and R = ⌊f/k⌋ + 1
     rounds, at most k values are decided.  Sweep failure patterns. *)
  let rng = Rng.of_int 11 in
  for _ = 1 to 60 do
    let n = 5 + Rng.int rng 8 in
    let f = Rng.int rng (n - 1) in
    let k = 1 + Rng.int rng 3 in
    let crashed = Rng.sample rng n f in
    let crashes =
      Array.to_list (Array.map (fun p -> (p, 1 + Rng.int rng 4)) crashed)
    in
    let adv = Build.crash_synchronous rng ~n ~crashes in
    let alg = Floodmin.make ~rounds:(Floodmin.rounds_for ~f ~k) in
    let r = Runner.run_packed alg ~rounds:(Floodmin.rounds_for ~f ~k) adv in
    check "terminates" true (Metrics.termination r.Runner.outcome);
    check
      (Printf.sprintf "k-agreement n=%d f=%d k=%d" n f k)
      true
      (Metrics.k_agreement ~k r.Runner.outcome);
    check "validity" true
      (Metrics.validity ~inputs:r.Runner.inputs r.Runner.outcome)
  done

let test_floodmin_unsound_outside_model () =
  (* On a partitioned Psrcs-style run, a fixed horizon decides one value
     per partition — more than its k would allow if it assumed f crashes.
     Concretely: blocks never talk, so FloodMin with k=1 budget still
     yields [blocks] values: agreement violated outside its model. *)
  let rng = Rng.of_int 12 in
  let adv = Build.partitioned rng ~n:9 ~blocks:3 () in
  let alg = Floodmin.make ~rounds:4 in
  let r = Runner.run_packed alg ~rounds:4 adv in
  check_int "three values under a consensus budget" 3
    (Metrics.distinct_decisions r.Runner.outcome)

let test_flood_consensus () =
  let rng = Rng.of_int 13 in
  let f = 2 in
  let crashes = [ (0, 1); (1, 2) ] in
  let adv = Build.crash_synchronous rng ~n:7 ~crashes in
  let alg = Flood_consensus.make ~f in
  let r = Runner.run_packed alg ~rounds:(f + 1) adv in
  check_int "consensus" 1 (Metrics.distinct_decisions r.Runner.outcome);
  Alcotest.(check (option int)) "f+1 rounds" (Some (f + 1))
    (Metrics.last_decision_round r.Runner.outcome)

let test_naive_min_isolation () =
  (* The ♦Psrcs argument: an isolation prefix longer than the naive
     horizon forces n distinct decisions. *)
  let rng = Rng.of_int 14 in
  let base = Build.block_sources rng ~n:6 ~k:2 () in
  let adv = Build.isolated_prefix base ~rounds:5 in
  let alg = Naive_min.make ~horizon:4 in
  let r = Runner.run_packed alg ~rounds:10 adv in
  check_int "n distinct values" 6 (Metrics.distinct_decisions r.Runner.outcome);
  (* With the isolation shorter than the horizon, the naive rule does
     better on this particular run. *)
  let adv = Build.isolated_prefix base ~rounds:1 in
  let alg = Naive_min.make ~horizon:8 in
  let r = Runner.run_packed alg ~rounds:10 adv in
  check "fewer values when horizon outlasts isolation" true
    (Metrics.distinct_decisions r.Runner.outcome <= 2)

let test_names () =
  check "floodmin name" true
    (Round_model.name_of (Floodmin.make ~rounds:3) = "floodmin(R=3)");
  check "naive name" true
    (Round_model.name_of (Naive_min.make ~horizon:5) = "naive-min(H=5)")

let test_floodmin_message_bits_constant () =
  (* FloodMin messages are value-sized, not graph-sized. *)
  let adv = Build.synchronous ~n:16 in
  let r = Runner.run_packed (Floodmin.make ~rounds:1) adv in
  check_int "32-bit messages" 32 r.Runner.outcome.Executor.max_message_bits

let tests =
  [
    Alcotest.test_case "rounds_for" `Quick test_rounds_for;
    Alcotest.test_case "floodmin failure-free" `Quick test_floodmin_failure_free;
    Alcotest.test_case "floodmin crash-model k-agreement" `Quick
      test_floodmin_crash_model_k_agreement;
    Alcotest.test_case "floodmin unsound outside model" `Quick
      test_floodmin_unsound_outside_model;
    Alcotest.test_case "flood consensus" `Quick test_flood_consensus;
    Alcotest.test_case "naive-min under isolation" `Quick test_naive_min_isolation;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "floodmin message bits" `Quick
      test_floodmin_message_bits_constant;
  ]
