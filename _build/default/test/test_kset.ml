(* End-to-end tests of Algorithm 1: the k-set agreement properties
   (Theorem 16), the root-component bound (Theorem 1), the tightness run
   (Theorem 2), termination bounds (Lemma 11), and the consensus remark of
   Section V. *)

open Ssg_util
open Ssg_rounds
open Ssg_skeleton
open Ssg_adversary
open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* One generated adversary per invocation, spanning the generator zoo. *)
let random_adversary rng =
  let n = 4 + Rng.int rng 9 in
  match Rng.int rng 6 with
  | 0 ->
      let k = 1 + Rng.int rng (n - 1) in
      Build.block_sources rng ~n ~k ~prefix_len:(Rng.int rng 5)
        ~noise:(Rng.float rng *. 0.5) ()
  | 1 -> Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3)
        ~prefix_len:(Rng.int rng 4) ()
  | 2 -> Build.single_root rng ~n ~prefix_len:(Rng.int rng 4) ()
  | 3 -> Build.arbitrary rng ~n ~density:(0.1 +. (Rng.float rng *. 0.4))
        ~prefix_len:(Rng.int rng 5) ~noise:0.4 ()
  | 4 -> Build.lower_bound ~n ~k:(1 + Rng.int rng (n - 1))
  | _ ->
      Build.with_recurrent_noise rng
        (Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ())
        ~noise:(Rng.float rng *. 0.3)

let test_theorem16_properties () =
  (* Validity and Termination hold across the whole zoo; k-Agreement at
     the run's exact min_k holds for the paper's rule too in all but the
     rare noisy-prefix runs of the Theorem 16 gap (see the dedicated gap
     test below), which these seeds do not hit. *)
  let rng = Rng.of_int 1001 in
  for i = 1 to 120 do
    let adv = random_adversary rng in
    let r = Runner.run_kset adv in
    let v = Metrics.verdict ~k:r.Runner.min_k r in
    check (Printf.sprintf "run %d (%s) agreement" i r.Runner.adversary) true
      v.Metrics.agreement;
    check (Printf.sprintf "run %d validity" i) true v.Metrics.validity;
    check (Printf.sprintf "run %d termination" i) true v.Metrics.termination
  done

let test_theorem16_clean_runs () =
  (* On runs whose skeleton is stable from round 1 the paper's proof is
     airtight, and so is the implementation: agreement at min_k always. *)
  let rng = Rng.of_int 1021 in
  for _ = 1 to 80 do
    let n = 4 + Rng.int rng 9 in
    let adv =
      match Rng.int rng 4 with
      | 0 -> Build.block_sources rng ~n ~k:(1 + Rng.int rng (n - 1)) ()
      | 1 -> Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ()
      | 2 -> Build.lower_bound ~n ~k:(1 + Rng.int rng (n - 1))
      | _ ->
          Build.with_recurrent_noise rng
            (Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ())
            ~noise:(Rng.float rng *. 0.3)
    in
    let r = Runner.run_kset adv in
    check "clean-run agreement" true
      (Metrics.k_agreement ~k:r.Runner.min_k r.Runner.outcome)
  done

let test_repaired_rule_on_zoo () =
  (* The confirm-n decision rule holds k-agreement across the full zoo,
     including noisy prefixes. *)
  let rng = Rng.of_int 1022 in
  for _ = 1 to 80 do
    let adv = random_adversary rng in
    let n = Adversary.n adv in
    let v = Ssg_core.Kset_agreement.make_alg ~confirm_rounds:n () in
    let rounds = Adversary.prefix_length adv + (3 * n) + 4 in
    let r = Runner.run_kset ~variant:v ~rounds adv in
    check "repaired agreement" true
      (Metrics.k_agreement ~k:r.Runner.min_k r.Runner.outcome);
    check "repaired termination" true (Metrics.termination r.Runner.outcome)
  done

let test_theorem16_gap_counterexample () =
  (* Deterministically hunt a run on which the paper's rule exceeds
     min_k (it exists: stale labels can certify a strongly connected
     G_p during the n rounds after a noisy prefix dies), then check that
     the n-round confirmation repairs that exact run. *)
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < 3000 do
    let rng = Rng.of_int (424242 + !i) in
    let n = 6 + Rng.int rng 4 in
    let adv =
      Build.block_sources rng ~n ~k:(1 + Rng.int rng 2)
        ~prefix_len:(2 + Rng.int rng 3) ~noise:0.5 ()
    in
    let mk = Adversary.min_k adv in
    let r = Runner.run_kset adv in
    if Metrics.distinct_decisions r.Runner.outcome > mk then
      found := Some (adv, mk);
    incr i
  done;
  match !found with
  | None ->
      Alcotest.fail
        "no Theorem 16 counterexample found in 3000 runs (rule changed?)"
  | Some (adv, mk) ->
      let n = Adversary.n adv in
      let v = Ssg_core.Kset_agreement.make_alg ~confirm_rounds:n () in
      let rounds = Adversary.prefix_length adv + (3 * n) + 4 in
      let r = Runner.run_kset ~variant:v ~rounds adv in
      check "repaired rule fixes the counterexample" true
        (Metrics.distinct_decisions r.Runner.outcome <= mk);
      check "repaired termination on the counterexample" true
        (Metrics.termination r.Runner.outcome)

let test_monitored_runs_clean () =
  (* The lemma monitors stay silent on the paper's algorithm, across the
     zoo (approximation correct under any predicate). *)
  let rng = Rng.of_int 1002 in
  for i = 1 to 40 do
    let adv = random_adversary rng in
    let r = Runner.run_kset ~monitor:true adv in
    Alcotest.(check (list string))
      (Printf.sprintf "run %d (%s) monitors" i r.Runner.adversary)
      [] r.Runner.violations
  done

let test_theorem1_root_bound () =
  (* Theorem 1: at most k = min_k root components, in every run. *)
  let rng = Rng.of_int 1003 in
  for _ = 1 to 100 do
    let adv = random_adversary rng in
    let r = Runner.run_kset adv in
    let distinct, roots = Metrics.decisions_per_root r in
    check "roots <= min_k" true (roots <= r.Runner.min_k);
    check "decisions <= min_k" true (distinct <= r.Runner.min_k)
  done

let test_decisions_bounded_by_roots_in_stable_runs () =
  (* The Section V one-to-one correspondence between decision values and
     root components.  It provably holds when the skeleton never shrinks
     (stabilization round 1): then every strongly connected approximation
     reflects true components.  (For runs with r_ST >= 2 it can fail — see
     the counterexample test below.) *)
  let rng = Rng.of_int 1013 in
  for _ = 1 to 60 do
    let n = 4 + Rng.int rng 9 in
    let adv =
      match Rng.int rng 3 with
      | 0 -> Build.block_sources rng ~n ~k:(1 + Rng.int rng (n - 1)) ()
      | 1 -> Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ()
      | _ -> Build.single_root rng ~n ()
    in
    let r = Runner.run_kset adv in
    let distinct, roots = Metrics.decisions_per_root r in
    check "decisions <= roots (clean run)" true (distinct <= roots)
  done

let test_one_per_root_can_fail_with_late_stabilization () =
  (* Documented reproduction finding: with pre-stabilization noise, stale
     labels survive purging until ~r_ST + n, so a process can pass the
     Line 28 test on a transiently-certified component and decide a value
     that is no root component's outcome.  The count can then exceed the
     number of root components — though never min_k in any run we have
     found (Theorem 16's actual statement).  This pins the behaviour down
     so any future change is noticed. *)
  let rng = Rng.of_int 1006 in
  let exceeded = ref false in
  for _ = 1 to 40 do
    let adv =
      Build.single_root rng ~n:(3 + Rng.int rng 10)
        ~prefix_len:(Rng.int rng 4) ()
    in
    let r = Runner.run_kset adv in
    let distinct, roots = Metrics.decisions_per_root r in
    if distinct > roots then exceeded := true;
    check "still within min_k" true (distinct <= r.Runner.min_k)
  done;
  check "counterexample to one-per-root exists" true !exceeded

let test_theorem2_tightness () =
  (* The lower-bound run: Psrcs(k) holds, yet exactly k distinct values
     are decided (so no algorithm can guarantee k-1). *)
  List.iter
    (fun (n, k) ->
      let adv = Build.lower_bound ~n ~k in
      check "psrcs(k)" true (Adversary.psrcs adv ~k);
      let r = Runner.run_kset adv in
      check_int
        (Printf.sprintf "exactly k=%d values (n=%d)" k n)
        k
        (Metrics.distinct_decisions r.Runner.outcome);
      (* the lonely processes and s must decide their own values *)
      Array.iteri
        (fun p d ->
          match d with
          | Some { Executor.value; _ } when p < k ->
              check_int "loner decides own input" r.Runner.inputs.(p) value
          | _ -> ())
        r.Runner.outcome.Executor.decisions)
    [ (4, 2); (6, 3); (8, 3); (12, 6); (6, 1) ]

let test_lemma11_termination_bound () =
  (* Every process decides by r_ST + 2n - 1, where r_ST is the actual
     stabilization round of the executed trace. *)
  let rng = Rng.of_int 1004 in
  for _ = 1 to 60 do
    let adv = random_adversary rng in
    let n = Adversary.n adv in
    let r = Runner.run_kset adv in
    let horizon = Runner.default_rounds adv in
    let trace = Adversary.trace adv ~rounds:horizon in
    let rst = Skeleton.stabilization_round trace in
    match Metrics.last_decision_round r.Runner.outcome with
    | Some last ->
        check
          (Printf.sprintf "last=%d <= rst=%d + 2n-1 (n=%d)" last rst n)
          true
          (last <= rst + (2 * n) - 1)
    | None -> Alcotest.fail "no decision"
  done

let test_root_members_decide_by_rst_plus_n () =
  (* Root-component members decide via Line 29 by r_ST + n - 1. *)
  let rng = Rng.of_int 1005 in
  for _ = 1 to 40 do
    let adv = random_adversary rng in
    let n = Adversary.n adv in
    let r = Runner.run_kset adv in
    let trace = Adversary.trace adv ~rounds:(Runner.default_rounds adv) in
    let rst = Skeleton.stabilization_round trace in
    Array.iteri
      (fun p d ->
        if Ssg_skeleton.Analysis.is_root r.Runner.analysis p then
          match d with
          | Some { Executor.round; _ } ->
              check "root decides by rst+n-1" true (round <= rst + n - 1)
          | None -> Alcotest.fail "root member undecided")
      r.Runner.outcome.Executor.decisions
  done

let test_consensus_in_single_root_runs () =
  (* Section V: the algorithm solves consensus in sufficiently
     well-behaved runs — single root component and a skeleton that is
     stable from round 1. *)
  let rng = Rng.of_int 1014 in
  for _ = 1 to 40 do
    let adv = Build.single_root rng ~n:(3 + Rng.int rng 10) () in
    let r = Runner.run_kset adv in
    check_int "one value" 1 (Metrics.distinct_decisions r.Runner.outcome)
  done

let test_synchronous_consensus () =
  let adv = Build.synchronous ~n:8 in
  let r = Runner.run_kset adv in
  check_int "one value" 1 (Metrics.distinct_decisions r.Runner.outcome);
  Alcotest.(check (list int)) "global min wins" [ 0 ]
    (Executor.decision_values r.Runner.outcome)

let test_partitioned_one_value_per_island () =
  (* Partitionable-system motivation: each island reaches internal
     consensus. *)
  let rng = Rng.of_int 1007 in
  for _ = 1 to 20 do
    let blocks = 2 + Rng.int rng 3 in
    let n = blocks * (2 + Rng.int rng 3) in
    let adv = Build.partitioned rng ~n ~blocks () in
    let r = Runner.run_kset adv in
    check_int "one value per island" blocks
      (Metrics.distinct_decisions r.Runner.outcome);
    (* and each island's value is its own minimum *)
    let skel = r.Runner.skeleton in
    let a = Ssg_skeleton.Analysis.analyze skel in
    Array.iteri
      (fun p d ->
        match d with
        | Some { Executor.value; _ } ->
            let island = Ssg_skeleton.Analysis.component_of a p in
            let island_min =
              Ssg_util.Bitset.fold (fun q m -> min q m) island max_int
            in
            check_int "island min" island_min value
        | None -> Alcotest.fail "undecided")
      r.Runner.outcome.Executor.decisions
  done

let test_isolation_decides_own_values () =
  (* One isolated round forever destroys perpetual timeliness: every
     process becomes its own root and decides its own input (the ♦Psrcs
     discussion of Section III). *)
  let rng = Rng.of_int 1008 in
  let base = Build.block_sources rng ~n:7 ~k:2 () in
  let adv = Build.isolated_prefix base ~rounds:1 in
  let r = Runner.run_kset adv in
  check_int "n values" 7 (Metrics.distinct_decisions r.Runner.outcome);
  check_int "min_k = n" 7 r.Runner.min_k;
  check "still k-agreement at the run's own k" true
    (Metrics.k_agreement ~k:r.Runner.min_k r.Runner.outcome)

let test_decisions_are_root_minima () =
  (* In runs stable from round 1 (with distinct identity inputs), every
     decided value is the minimum input of some root component. *)
  let rng = Rng.of_int 1009 in
  for _ = 1 to 40 do
    let n = 4 + Rng.int rng 9 in
    let adv =
      match Rng.int rng 3 with
      | 0 -> Build.block_sources rng ~n ~k:(1 + Rng.int rng (n - 1)) ()
      | 1 -> Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ()
      | _ -> Build.lower_bound ~n ~k:(1 + Rng.int rng (n - 1))
    in
    let r = Runner.run_kset adv in
    let root_minima =
      List.map
        (fun root -> Ssg_util.Bitset.fold (fun q m -> min q m) root max_int)
        (Ssg_skeleton.Analysis.roots r.Runner.analysis)
    in
    List.iter
      (fun v -> check "decision is a root minimum" true (List.mem v root_minima))
      (Executor.decision_values r.Runner.outcome)
  done

let test_permuted_inputs_validity () =
  (* With arbitrary (shuffled, duplicated) inputs, validity still holds
     and values decided are proposals. *)
  let rng = Rng.of_int 1010 in
  for _ = 1 to 30 do
    let adv = random_adversary rng in
    let n = Adversary.n adv in
    let inputs = Array.init n (fun _ -> Rng.int rng 5) in
    let r = Runner.run_kset ~inputs adv in
    check "validity" true (Metrics.validity ~inputs r.Runner.outcome);
    check "termination" true (Metrics.termination r.Runner.outcome)
  done

let test_all_same_input_consensus () =
  (* If everyone proposes v, everyone decides v — follows from validity,
     checked directly. *)
  let rng = Rng.of_int 1011 in
  let adv = Build.partitioned rng ~n:9 ~blocks:3 () in
  let r = Runner.run_kset ~inputs:(Array.make 9 7) adv in
  Alcotest.(check (list int)) "only 7" [ 7 ]
    (Executor.decision_values r.Runner.outcome)

let test_confirm_rounds_validation () =
  check "confirm_rounds 0 rejected" true
    (try
       ignore (Ssg_core.Kset_agreement.make_alg ~confirm_rounds:0 ());
       false
     with Invalid_argument _ -> true);
  (* confirm_rounds = 1 is byte-for-byte the paper's rule *)
  let adv = Build.lower_bound ~n:6 ~k:2 in
  let v1 = Ssg_core.Kset_agreement.make_alg ~confirm_rounds:1 () in
  let a = Runner.run_kset adv and b = Runner.run_kset ~variant:v1 adv in
  check "confirm=1 = paper" true
    (a.Runner.outcome.Executor.decisions = b.Runner.outcome.Executor.decisions)

let test_message_bits_polynomial () =
  (* Sanity: the largest message is O(n^2 log n) bits, not exponential. *)
  List.iter
    (fun n ->
      let adv = Build.synchronous ~n in
      let r = Runner.run_kset adv in
      let bound = 1 + 32 + (n * 6 * n) + (n * n * (12 * 8)) in
      check
        (Printf.sprintf "n=%d max message %d < crude O(n^2 log n) bound %d" n
           r.Runner.outcome.Executor.max_message_bits bound)
        true
        (r.Runner.outcome.Executor.max_message_bits < bound))
    [ 4; 8; 16; 32 ]

let tests =
  [
    Alcotest.test_case "Theorem 16: agreement/validity/termination" `Slow
      test_theorem16_properties;
    Alcotest.test_case "Theorem 16 on clean runs" `Slow
      test_theorem16_clean_runs;
    Alcotest.test_case "repaired rule on the zoo" `Slow
      test_repaired_rule_on_zoo;
    Alcotest.test_case "Theorem 16 gap: counterexample exists and repair works"
      `Slow test_theorem16_gap_counterexample;
    Alcotest.test_case "monitored runs clean" `Slow test_monitored_runs_clean;
    Alcotest.test_case "Theorem 1: roots <= k; decisions <= k" `Slow
      test_theorem1_root_bound;
    Alcotest.test_case "decisions <= roots in stable runs" `Slow
      test_decisions_bounded_by_roots_in_stable_runs;
    Alcotest.test_case "one-per-root counterexample (r_ST >= 2)" `Quick
      test_one_per_root_can_fail_with_late_stabilization;
    Alcotest.test_case "Theorem 2: tightness" `Quick test_theorem2_tightness;
    Alcotest.test_case "Lemma 11: termination bound" `Slow
      test_lemma11_termination_bound;
    Alcotest.test_case "root members decide by rst+n-1" `Slow
      test_root_members_decide_by_rst_plus_n;
    Alcotest.test_case "consensus in single-root runs" `Quick
      test_consensus_in_single_root_runs;
    Alcotest.test_case "synchronous consensus" `Quick test_synchronous_consensus;
    Alcotest.test_case "partitioned islands" `Quick
      test_partitioned_one_value_per_island;
    Alcotest.test_case "isolation forces own values" `Quick
      test_isolation_decides_own_values;
    Alcotest.test_case "decisions are root minima" `Quick
      test_decisions_are_root_minima;
    Alcotest.test_case "validity under arbitrary inputs" `Quick
      test_permuted_inputs_validity;
    Alcotest.test_case "uniform inputs" `Quick test_all_same_input_consensus;
    Alcotest.test_case "confirm_rounds validation" `Quick
      test_confirm_rounds_validation;
    Alcotest.test_case "message bits polynomial" `Quick
      test_message_bits_polynomial;
  ]
