(* Tests for per-round HO predicates and the One-Third-Rule baseline. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_predicates
open Ssg_adversary
open Ssg_baselines
open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- HO predicates --- *)

let complete n = Digraph.complete ~self_loops:true n

let test_ho_on_complete () =
  let g = complete 5 in
  check "no_split" true (Ho_predicate.no_split g);
  check "uniform" true (Ho_predicate.uniform g);
  check "majority" true (Ho_predicate.majority g);
  check "two_thirds" true (Ho_predicate.two_thirds g);
  check "kernel" true (Ho_predicate.nonempty_kernel g);
  check "space_uniform" true (Ho_predicate.space_uniform g)

let test_ho_on_self_loops () =
  let g = Gen.self_loops_only 4 in
  check "split" false (Ho_predicate.no_split g);
  check "not uniform" false (Ho_predicate.uniform g);
  check "no majority" false (Ho_predicate.majority g);
  check "no kernel" false (Ho_predicate.nonempty_kernel g)

let test_ho_star_kernel () =
  (* star: everyone hears {center, self} *)
  let g = Gen.star 5 ~center:2 in
  check "kernel is the center" true (Ho_predicate.nonempty_kernel g);
  check "no_split via center" true (Ho_predicate.no_split g);
  check "not uniform (self differs)" false (Ho_predicate.uniform g);
  check "no majority (only 2 heard)" false (Ho_predicate.majority g)

let test_ho_uniform_but_partial () =
  (* everyone hears exactly {0, 1}: uniform without being complete *)
  let g = Digraph.create 4 in
  for q = 0 to 3 do
    Digraph.add_edge g 0 q;
    Digraph.add_edge g 1 q
  done;
  check "uniform" true (Ho_predicate.uniform g);
  check "not space_uniform" false (Ho_predicate.space_uniform g);
  check "no_split" true (Ho_predicate.no_split g);
  check "majority fails (2 of 4)" false (Ho_predicate.majority g)

let test_ho_two_thirds_boundary () =
  (* n = 3: hearing 2 of 3 processes is not > 2n/3; hearing 3 is *)
  let g2 = Digraph.create 3 in
  for q = 0 to 2 do
    Digraph.add_edge g2 q q;
    Digraph.add_edge g2 ((q + 1) mod 3) q
  done;
  check "2 of 3 insufficient" false (Ho_predicate.two_thirds g2);
  check "3 of 3 sufficient" true (Ho_predicate.two_thirds (complete 3))

let test_ho_trace_helpers () =
  let t =
    Trace.make [| Gen.self_loops_only 3; complete 3; complete 3 |]
  in
  check_int "count" 2 (Ho_predicate.count t Ho_predicate.space_uniform);
  check "eventually forever" true
    (Ho_predicate.eventually_forever t Ho_predicate.space_uniform);
  let t2 = Trace.make [| complete 3; Gen.self_loops_only 3 |] in
  check "not eventually forever (bad suffix)" false
    (Ho_predicate.eventually_forever t2 Ho_predicate.space_uniform)

(* --- One-Third Rule --- *)

let test_otr_synchronous () =
  let adv = Build.synchronous ~n:7 in
  let r = Runner.run_packed One_third_rule.packed ~rounds:5 adv in
  check "terminates" true (Metrics.termination r.Runner.outcome);
  Alcotest.(check (list int)) "consensus on min" [ 0 ]
    (Executor.decision_values r.Runner.outcome);
  (* everyone adopts the min in round 1, decides in round 2 *)
  Alcotest.(check (option int)) "two rounds" (Some 2)
    (Metrics.last_decision_round r.Runner.outcome)

let test_otr_safe_never_disagrees () =
  (* Agreement holds under every communication pattern, even hostile
     ones — the mirror image of FloodMin. *)
  let rng = Rng.of_int 21 in
  for _ = 1 to 80 do
    let n = 4 + Rng.int rng 8 in
    let adv =
      match Rng.int rng 4 with
      | 0 -> Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ()
      | 1 -> Build.arbitrary rng ~n ~density:(Rng.float rng) ~prefix_len:(Rng.int rng 5) ()
      | 2 -> Build.lower_bound ~n ~k:(1 + Rng.int rng (n - 1))
      | _ -> Build.block_sources rng ~n ~k:(1 + Rng.int rng (n - 1)) ~prefix_len:(Rng.int rng 4) ()
    in
    let r = Runner.run_packed One_third_rule.packed ~rounds:(3 * n) adv in
    check "agreement (<= 1 value)" true
      (Metrics.distinct_decisions r.Runner.outcome <= 1);
    check "validity" true
      (Metrics.validity ~inputs:r.Runner.inputs r.Runner.outcome)
  done

let test_otr_no_liveness_in_partitions () =
  (* Islands of <= 2n/3 processes never pass the threshold: no decision,
     rather than a wrong one. *)
  let rng = Rng.of_int 22 in
  let adv = Build.partitioned rng ~n:9 ~blocks:3 () in
  let r = Runner.run_packed One_third_rule.packed ~rounds:40 adv in
  check_int "nobody decides" 0
    (Array.fold_left
       (fun acc d -> if d <> None then acc + 1 else acc)
       0 r.Runner.outcome.Executor.decisions)

let test_otr_liveness_after_good_rounds () =
  (* Chaotic prefix, then synchronous forever: decides shortly after. *)
  let rng = Rng.of_int 23 in
  let base = Build.synchronous ~n:6 in
  let chaotic =
    Array.init 5 (fun _ -> Gen.gnp rng 6 0.3)
  in
  let adv =
    Adversary.make ~name:"chaos-then-sync" ~prefix:chaotic
      ~stable:(Digraph.complete ~self_loops:true 6)
  in
  ignore base;
  let r = Runner.run_packed One_third_rule.packed ~rounds:12 adv in
  check "eventually decides" true (Metrics.termination r.Runner.outcome);
  check "consensus" true (Metrics.distinct_decisions r.Runner.outcome = 1)

let test_otr_tie_break () =
  (* Tie between two values: the smaller must win the estimate update.
     2 processes each propose a distinct value and hear both: both adopt
     the smaller, then decide it. *)
  let adv = Build.synchronous ~n:2 in
  let r =
    Runner.run_packed One_third_rule.packed ~inputs:[| 9; 4 |] ~rounds:4 adv
  in
  Alcotest.(check (list int)) "smaller wins" [ 4 ]
    (Executor.decision_values r.Runner.outcome)

(* --- UniformVoting --- *)

let test_uv_synchronous () =
  (* phase 1 equalizes estimates, phase 2 decides: round 4. *)
  let adv = Build.synchronous ~n:6 in
  let r = Runner.run_packed Uniform_voting.packed ~rounds:8 adv in
  check "terminates" true (Metrics.termination r.Runner.outcome);
  Alcotest.(check (list int)) "consensus on min" [ 0 ]
    (Executor.decision_values r.Runner.outcome);
  Alcotest.(check (option int)) "round 4" (Some 4)
    (Metrics.last_decision_round r.Runner.outcome)

let test_uv_safe_under_rotating_kernel () =
  (* every round has a kernel -> no-split -> agreement, regardless of the
     extra noise; liveness is not guaranteed there and not asserted. *)
  let rng = Rng.of_int 31 in
  for _ = 1 to 30 do
    let n = 3 + Rng.int rng 7 in
    let adv = Build.rotating_kernel rng ~n ~extra:(Rng.float rng *. 0.5) in
    let r = Runner.run_packed Uniform_voting.packed ~rounds:(4 * n) adv in
    check "agreement under no-split" true
      (Metrics.distinct_decisions r.Runner.outcome <= 1);
    check "validity" true
      (Metrics.validity ~inputs:r.Runner.inputs r.Runner.outcome)
  done

let test_uv_needs_no_split () =
  (* True partitions violate no-split; each island is internally
     unanimous, so UniformVoting decides one value per island — the
     documented failure mode outside its predicate. *)
  let rng = Rng.of_int 32 in
  let adv = Build.partitioned rng ~n:8 ~blocks:2 () in
  let r = Runner.run_packed Uniform_voting.packed ~rounds:30 adv in
  check "two values under split rounds" true
    (Metrics.distinct_decisions r.Runner.outcome = 2)

let test_uv_liveness_after_uniform_phase () =
  (* chaos, then synchronous forever: decides within two phases. *)
  let rng = Rng.of_int 33 in
  let chaotic = Array.init 6 (fun _ -> Gen.gnp rng 5 0.4) in
  let adv =
    Adversary.make ~name:"chaos-then-sync" ~prefix:chaotic
      ~stable:(Digraph.complete ~self_loops:true 5)
  in
  let r = Runner.run_packed Uniform_voting.packed ~rounds:14 adv in
  check "decides" true (Metrics.termination r.Runner.outcome);
  check "consensus" true (Metrics.distinct_decisions r.Runner.outcome = 1)

let test_rotating_kernel_properties () =
  let rng = Rng.of_int 34 in
  let adv = Build.rotating_kernel rng ~n:5 ~extra:0.3 in
  (* every round graph has a nonempty kernel (no-split holds) *)
  for r = 1 to 12 do
    let g = Adversary.graph adv r in
    check "kernel each round" true (Ho_predicate.nonempty_kernel g);
    check "no split each round" true (Ho_predicate.no_split g)
  done;
  (* but the perpetual skeleton is only the self-loops: min_k = n *)
  check "skeleton collapses" true
    (Digraph.equal (Adversary.stable_skeleton adv) (Gen.self_loops_only 5));
  let t = Adversary.trace adv ~rounds:20 in
  check "trace agrees" true
    (Digraph.equal (Ssg_skeleton.Skeleton.final t) (Gen.self_loops_only 5))

let tests =
  [
    Alcotest.test_case "HO predicates on complete" `Quick test_ho_on_complete;
    Alcotest.test_case "HO predicates on self-loops" `Quick test_ho_on_self_loops;
    Alcotest.test_case "HO star kernel" `Quick test_ho_star_kernel;
    Alcotest.test_case "HO uniform but partial" `Quick test_ho_uniform_but_partial;
    Alcotest.test_case "HO two-thirds boundary" `Quick test_ho_two_thirds_boundary;
    Alcotest.test_case "HO trace helpers" `Quick test_ho_trace_helpers;
    Alcotest.test_case "OTR synchronous" `Quick test_otr_synchronous;
    Alcotest.test_case "OTR safety everywhere" `Quick test_otr_safe_never_disagrees;
    Alcotest.test_case "OTR stalls in partitions" `Quick
      test_otr_no_liveness_in_partitions;
    Alcotest.test_case "OTR liveness after good rounds" `Quick
      test_otr_liveness_after_good_rounds;
    Alcotest.test_case "OTR tie break" `Quick test_otr_tie_break;
    Alcotest.test_case "UV synchronous" `Quick test_uv_synchronous;
    Alcotest.test_case "UV safe under rotating kernel" `Quick
      test_uv_safe_under_rotating_kernel;
    Alcotest.test_case "UV needs no-split" `Quick test_uv_needs_no_split;
    Alcotest.test_case "UV liveness after uniform phase" `Quick
      test_uv_liveness_after_uniform_phase;
    Alcotest.test_case "rotating kernel properties" `Quick
      test_rotating_kernel_properties;
  ]
