(* Unit and property tests for Ssg_util.Bitset. *)

open Ssg_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_empty () =
  let s = Bitset.create 10 in
  check "empty" true (Bitset.is_empty s);
  check_int "cardinal" 0 (Bitset.cardinal s);
  check_int "capacity" 10 (Bitset.capacity s);
  check "mem" false (Bitset.mem s 3)

let test_add_remove () =
  let s = Bitset.create 70 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 69;
  check "mem 0" true (Bitset.mem s 0);
  check "mem 63" true (Bitset.mem s 63);
  check "mem 69" true (Bitset.mem s 69);
  check "mem 64" false (Bitset.mem s 64);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  check "removed" false (Bitset.mem s 63);
  check_int "cardinal after remove" 2 (Bitset.cardinal s);
  Bitset.add s 0;
  check_int "idempotent add" 2 (Bitset.cardinal s)

let test_full () =
  let s = Bitset.full 65 in
  check_int "cardinal" 65 (Bitset.cardinal s);
  check "mem last" true (Bitset.mem s 64);
  Bitset.clear s;
  check "cleared" true (Bitset.is_empty s);
  Bitset.fill s;
  check_int "refilled" 65 (Bitset.cardinal s)

let test_full_word_boundary () =
  (* Capacity a multiple of the word size exercises the last-word mask. *)
  List.iter
    (fun n ->
      let s = Bitset.full n in
      check_int (Printf.sprintf "full %d" n) n (Bitset.cardinal s);
      check_int "elements length" n (List.length (Bitset.elements s)))
    [ 1; 62; 63; 64; 126; 128 ]

let test_zero_capacity () =
  let s = Bitset.create 0 in
  check "empty" true (Bitset.is_empty s);
  check "full 0 empty too" true (Bitset.is_empty (Bitset.full 0));
  check "equal" true (Bitset.equal s (Bitset.create 0))

let test_out_of_range () =
  let s = Bitset.create 5 in
  Alcotest.check_raises "mem -1" (Invalid_argument "Bitset: index -1 out of range [0, 5)")
    (fun () -> ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "add 5" (Invalid_argument "Bitset: index 5 out of range [0, 5)")
    (fun () -> Bitset.add s 5)

let test_capacity_mismatch () =
  let a = Bitset.create 4 and b = Bitset.create 5 in
  Alcotest.check_raises "inter" (Invalid_argument "Bitset: capacity mismatch (4 vs 5)")
    (fun () -> ignore (Bitset.inter a b))

let test_set_algebra () =
  let a = Bitset.of_list 10 [ 1; 3; 5; 7 ] in
  let b = Bitset.of_list 10 [ 3; 4; 5; 6 ] in
  check "inter" true (Bitset.equal (Bitset.inter a b) (Bitset.of_list 10 [ 3; 5 ]));
  check "union" true
    (Bitset.equal (Bitset.union a b) (Bitset.of_list 10 [ 1; 3; 4; 5; 6; 7 ]));
  check "diff" true (Bitset.equal (Bitset.diff a b) (Bitset.of_list 10 [ 1; 7 ]));
  check "subset no" false (Bitset.subset a b);
  check "subset yes" true (Bitset.subset (Bitset.of_list 10 [ 3; 5 ]) a);
  check "disjoint no" false (Bitset.disjoint a b);
  check "disjoint yes" true
    (Bitset.disjoint a (Bitset.of_list 10 [ 0; 2; 4 ]))

let test_iter_order () =
  let s = Bitset.of_list 100 [ 99; 0; 64; 63; 31 ] in
  Alcotest.(check (list int)) "elements sorted" [ 0; 31; 63; 64; 99 ]
    (Bitset.elements s);
  check_int "min_elt" 0 (Bitset.min_elt s);
  check_int "fold count" 5 (Bitset.fold (fun _ acc -> acc + 1) s 0)

let test_min_elt_empty () =
  let s = Bitset.create 8 in
  check "min_elt_opt" true (Bitset.min_elt_opt s = None);
  Alcotest.check_raises "min_elt" Not_found (fun () ->
      ignore (Bitset.min_elt s))

let test_for_all_exists () =
  let s = Bitset.of_list 20 [ 2; 4; 6 ] in
  check "for_all even" true (Bitset.for_all (fun i -> i mod 2 = 0) s);
  check "for_all >2" false (Bitset.for_all (fun i -> i > 2) s);
  check "exists 6" true (Bitset.exists (fun i -> i = 6) s);
  check "exists 7" false (Bitset.exists (fun i -> i = 7) s);
  check "for_all empty" true
    (Bitset.for_all (fun _ -> false) (Bitset.create 5))

let test_copy_independent () =
  let a = Bitset.of_list 10 [ 1; 2 ] in
  let b = Bitset.copy a in
  Bitset.add b 9;
  check "original unchanged" false (Bitset.mem a 9);
  check "copy changed" true (Bitset.mem b 9)

let test_blit () =
  let a = Bitset.of_list 10 [ 1; 2 ] in
  let b = Bitset.of_list 10 [ 7 ] in
  Bitset.blit ~src:a ~dst:b;
  check "blit equal" true (Bitset.equal a b)

let test_pp () =
  Alcotest.(check string) "pp" "{1, 3}" (Bitset.to_string (Bitset.of_list 5 [ 3; 1 ]));
  Alcotest.(check string) "pp empty" "{}" (Bitset.to_string (Bitset.create 5))

(* Property tests: bitsets behave like the reference Stdlib Set. *)

module IntSet = Set.Make (Int)

let cap = 130

let gen_elems = QCheck2.Gen.(list_size (int_bound 40) (int_bound (cap - 1)))

let of_elems xs = Bitset.of_list cap xs
let to_set s = IntSet.of_list (Bitset.elements s)

let prop_model name f =
  QCheck2.Test.make ~count:300 ~name
    QCheck2.Gen.(pair gen_elems gen_elems)
    (fun (xs, ys) -> f (of_elems xs) (of_elems ys) (IntSet.of_list xs) (IntSet.of_list ys))

let props =
  [
    prop_model "inter models Set.inter" (fun a b sa sb ->
        IntSet.equal (to_set (Bitset.inter a b)) (IntSet.inter sa sb));
    prop_model "union models Set.union" (fun a b sa sb ->
        IntSet.equal (to_set (Bitset.union a b)) (IntSet.union sa sb));
    prop_model "diff models Set.diff" (fun a b sa sb ->
        IntSet.equal (to_set (Bitset.diff a b)) (IntSet.diff sa sb));
    prop_model "subset models Set.subset" (fun a b sa sb ->
        Bitset.subset a b = IntSet.subset sa sb);
    prop_model "disjoint models Set.disjoint" (fun a b sa sb ->
        Bitset.disjoint a b = IntSet.disjoint sa sb);
    prop_model "cardinal models Set.cardinal" (fun a _ sa _ ->
        Bitset.cardinal a = IntSet.cardinal sa);
    prop_model "equal iff same set" (fun a b sa sb ->
        Bitset.equal a b = IntSet.equal sa sb);
    prop_model "compare consistent with equal" (fun a b sa sb ->
        (Bitset.compare a b = 0) = IntSet.equal sa sb);
    prop_model "union is commutative" (fun a b _ _ ->
        Bitset.equal (Bitset.union a b) (Bitset.union b a));
    prop_model "inter distributes over union" (fun a b _ _ ->
        let c = Bitset.of_list cap [ 0; 17; 64; 99 ] in
        Bitset.equal
          (Bitset.inter a (Bitset.union b c))
          (Bitset.union (Bitset.inter a b) (Bitset.inter a c)));
    prop_model "de Morgan via diff" (fun a b _ _ ->
        let u = Bitset.full cap in
        Bitset.equal
          (Bitset.diff u (Bitset.union a b))
          (Bitset.inter (Bitset.diff u a) (Bitset.diff u b)));
  ]

let tests =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "full/clear/fill" `Quick test_full;
    Alcotest.test_case "word boundaries" `Quick test_full_word_boundary;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
    Alcotest.test_case "set algebra" `Quick test_set_algebra;
    Alcotest.test_case "iteration order" `Quick test_iter_order;
    Alcotest.test_case "min_elt on empty" `Quick test_min_elt_empty;
    Alcotest.test_case "for_all/exists" `Quick test_for_all_exists;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "blit" `Quick test_blit;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
  @ List.map QCheck_alcotest.to_alcotest props
