(* Tests for the dynamic-network pieces: rolling-window skeletons and
   epoch-based runs (partitions splitting and healing over time). *)

open Ssg_util
open Ssg_graph
open Ssg_skeleton
open Ssg_adversary

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Windowed --- *)

let test_windowed_empty () =
  let w = Windowed.create ~n:3 ~window:4 in
  check "complete before any round" true
    (Digraph.equal (Windowed.current w) (Digraph.complete ~self_loops:true 3));
  check "not filled" false (Windowed.filled w);
  check_int "zero rounds" 0 (Windowed.rounds_absorbed w)

let test_windowed_partial_fill () =
  let w = Windowed.create ~n:3 ~window:5 in
  let a = Digraph.of_edges 3 [ (0, 0); (1, 1); (2, 2); (0, 1); (1, 2) ] in
  let b = Digraph.of_edges 3 [ (0, 0); (1, 1); (2, 2); (0, 1) ] in
  Windowed.absorb w a;
  check "one graph = itself" true (Digraph.equal (Windowed.current w) a);
  Windowed.absorb w b;
  check "two graphs = intersection" true
    (Digraph.equal (Windowed.current w) (Digraph.inter a b))

let test_windowed_eviction () =
  (* window 2: an edge present only in an evicted round is forgotten *)
  let w = Windowed.create ~n:2 ~window:2 in
  let loops = Gen.self_loops_only 2 in
  let extra = Digraph.copy loops in
  Digraph.add_edge extra 0 1;
  Windowed.absorb w loops;
  Windowed.absorb w extra;
  check "not yet" false (Digraph.mem_edge (Windowed.current w) 0 1);
  Windowed.absorb w extra;
  (* now the window is [extra; extra] *)
  check "recovered after eviction" true
    (Digraph.mem_edge (Windowed.current w) 0 1);
  check "filled" true (Windowed.filled w)

let test_windowed_matches_naive () =
  (* property: window-T content equals the naive intersection of the last
     T graphs, across random sequences *)
  let rng = Rng.of_int 4 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 6 in
    let t = 1 + Rng.int rng 4 in
    let w = Windowed.create ~n ~window:t in
    let history = ref [] in
    for _ = 1 to 12 do
      let g = Gen.gnp rng n 0.5 in
      Windowed.absorb w g;
      history := g :: !history;
      let last_t =
        List.filteri (fun i _ -> i < t) !history
      in
      let naive =
        List.fold_left Digraph.inter
          (Digraph.complete ~self_loops:true n)
          last_t
      in
      check "matches naive" true (Digraph.equal (Windowed.current w) naive)
    done
  done

let test_windowed_validation () =
  check "zero window" true
    (try ignore (Windowed.create ~n:2 ~window:0); false
     with Invalid_argument _ -> true);
  let w = Windowed.create ~n:2 ~window:1 in
  check "order mismatch" true
    (try Windowed.absorb w (Gen.self_loops_only 3); false
     with Invalid_argument _ -> true)

(* --- Epochs --- *)

let two_islands n =
  (* {0..n/2-1} and {n/2..n-1} as cycles *)
  let g = Gen.self_loops_only n in
  let h = n / 2 in
  for i = 0 to h - 1 do
    Digraph.add_edge g i ((i + 1) mod h)
  done;
  for i = h to n - 1 do
    Digraph.add_edge g i (h + ((i + 1 - h) mod (n - h)))
  done;
  g

let test_epochs_schedule () =
  let n = 6 in
  let merged = Digraph.complete ~self_loops:true n in
  let split = two_islands n in
  let adv =
    Build.epochs ~name:"merge-then-split" [ (merged, 4) ] ~final:split
  in
  check "rounds 1-4 merged" true (Digraph.equal (Adversary.graph adv 1) merged);
  check "round 4 merged" true (Digraph.equal (Adversary.graph adv 4) merged);
  check "round 5 split" true (Digraph.equal (Adversary.graph adv 5) split);
  check "round 50 split" true (Digraph.equal (Adversary.graph adv 50) split);
  check "bad length rejected" true
    (try ignore (Build.epochs ~name:"x" [ (merged, 0) ] ~final:split); false
     with Invalid_argument _ -> true)

let test_windowed_tracks_epochs () =
  (* After T rounds inside an epoch, the windowed skeleton equals that
     epoch's graph — it forgets the previous topology. *)
  let n = 6 in
  let merged = Digraph.complete ~self_loops:true n in
  let split = two_islands n in
  let adv = Build.epochs ~name:"m10-s" [ (merged, 10) ] ~final:split in
  let t = 4 in
  let w = Windowed.create ~n ~window:t in
  for r = 1 to 10 do
    Windowed.absorb w (Adversary.graph adv r)
  done;
  check "window inside epoch 1 = merged" true
    (Digraph.equal (Windowed.current w) merged);
  for r = 11 to 10 + t do
    Windowed.absorb w (Adversary.graph adv r)
  done;
  check "window inside epoch 2 = split" true
    (Digraph.equal (Windowed.current w) split);
  (* whereas the cumulative skeleton is stuck with the intersection *)
  let trace = Adversary.trace adv ~rounds:(10 + t) in
  check "cumulative skeleton lost the merged epoch" true
    (Digraph.equal (Skeleton.final trace) (Digraph.inter merged split))

let test_repeated_agreement_across_epochs () =
  (* Healing partitions: epoch 1 split (2 islands), epoch 2 merged.
     Instance 0 runs in the split epoch (2 values), instance 1 in the
     merged epoch (consensus).  Windows are sized to the epochs. *)
  let n = 6 in
  let split = two_islands n in
  let merged = Digraph.complete ~self_loops:true n in
  let window = 2 + (2 * n) + 2 in
  let adv =
    Build.epochs ~name:"split-then-heal" [ (split, window) ] ~final:merged
  in
  let results =
    Ssg_apps.Repeated.run adv
      ~proposals:(fun i -> Array.init n (fun p -> (10 * i) + p))
      ~instances:2 ~window
  in
  (match results with
  | [ r0; r1 ] ->
      check_int "split epoch: 2 values" 2 r0.Ssg_apps.Repeated.distinct;
      check_int "merged epoch: consensus" 1 r1.Ssg_apps.Repeated.distinct
  | _ -> Alcotest.fail "expected two instances")

let tests =
  [
    Alcotest.test_case "windowed empty" `Quick test_windowed_empty;
    Alcotest.test_case "windowed partial fill" `Quick test_windowed_partial_fill;
    Alcotest.test_case "windowed eviction" `Quick test_windowed_eviction;
    Alcotest.test_case "windowed matches naive intersection" `Quick
      test_windowed_matches_naive;
    Alcotest.test_case "windowed validation" `Quick test_windowed_validation;
    Alcotest.test_case "epochs schedule" `Quick test_epochs_schedule;
    Alcotest.test_case "windowed tracks epochs" `Quick test_windowed_tracks_epochs;
    Alcotest.test_case "repeated agreement across epochs" `Quick
      test_repeated_agreement_across_epochs;
  ]
