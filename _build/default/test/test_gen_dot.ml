(* Tests for graph generators and DOT export. *)

open Ssg_util
open Ssg_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rng () = Rng.of_int 2024

let test_gnp_self_loops () =
  let g = Gen.gnp (rng ()) 10 0.3 in
  check "self loops" true (Digraph.has_all_self_loops g)

let test_gnp_extremes () =
  let g0 = Gen.gnp (rng ()) 8 0.0 in
  check_int "p=0: only loops" 8 (Digraph.edge_count g0);
  let g1 = Gen.gnp (rng ()) 8 1.0 in
  check_int "p=1: complete" 64 (Digraph.edge_count g1)

let test_cycle_on () =
  let g = Gen.cycle_on 6 [| 1; 3; 5 |] in
  check "cycle edge" true (Digraph.mem_edge g 1 3);
  check "wraps" true (Digraph.mem_edge g 5 1);
  check "self loop on member" true (Digraph.mem_edge g 3 3);
  check "non-member untouched" false (Digraph.mem_edge g 0 0);
  check "sc on members" true
    (Scc.is_strongly_connected ~nodes:(Bitset.of_list 6 [ 1; 3; 5 ]) g)

let test_cycle_singleton () =
  let g = Gen.cycle_on 4 [| 2 |] in
  check_int "just the loop" 1 (Digraph.edge_count g)

let test_strongly_connected_on () =
  let nodes = Bitset.of_list 12 [ 0; 2; 4; 6; 8 ] in
  for seed = 0 to 9 do
    let g = Gen.strongly_connected_on (Rng.of_int seed) 12 nodes ~extra:0.4 in
    check "sc" true (Scc.is_strongly_connected ~nodes g);
    (* no edges outside the node set *)
    Digraph.iter_edges g (fun p q ->
        check "edges internal" true (Bitset.mem nodes p && Bitset.mem nodes q))
  done

let test_star () =
  let g = Gen.star 5 ~center:2 in
  check "center to all" true (Digraph.mem_edge g 2 0 && Digraph.mem_edge g 2 4);
  check "self loops" true (Digraph.has_all_self_loops g);
  check "no reverse" false (Digraph.mem_edge g 0 2)

let test_self_loops_only () =
  let g = Gen.self_loops_only 7 in
  check_int "seven edges" 7 (Digraph.edge_count g);
  check "loops" true (Digraph.has_all_self_loops g)

let test_sprinkle () =
  let base = Gen.self_loops_only 8 in
  let g = Gen.sprinkle (rng ()) base 0.5 in
  check "supergraph" true (Digraph.subgraph_of base g);
  check "original untouched" true (Digraph.edge_count base = 8);
  let g0 = Gen.sprinkle (rng ()) base 0.0 in
  check "p=0 identity" true (Digraph.equal g0 base);
  let g1 = Gen.sprinkle (rng ()) base 1.0 in
  check_int "p=1 complete" 64 (Digraph.edge_count g1)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_dot_digraph () =
  let g = Digraph.of_edges 3 [ (0, 1); (2, 2) ] in
  let dot = Dot.of_digraph ~name:"T" g in
  check "header" true (contains ~needle:"digraph \"T\"" dot);
  check "edge p1->p2" true (contains ~needle:"p1 -> p2;" dot);
  check "self loop omitted" false (contains ~needle:"p3 -> p3" dot);
  let dot = Dot.of_digraph ~self_loops:true g in
  check "self loop shown" true (contains ~needle:"p3 -> p3;" dot)

let test_dot_lgraph () =
  let g = Lgraph.create 3 ~self:0 in
  Lgraph.set_edge g 1 0 ~label:4;
  let dot = Dot.of_lgraph g in
  check "labelled edge" true (contains ~needle:"p2 -> p1 [label=\"4\"];" dot)

let test_dot_components () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 0); (2, 3) ] in
  let dot =
    Dot.of_digraph_with_components g [ Bitset.of_list 4 [ 0; 1 ] ]
  in
  check "cluster" true (contains ~needle:"subgraph cluster_0" dot);
  check "member" true (contains ~needle:"p1;" dot)

let tests =
  [
    Alcotest.test_case "gnp self loops" `Quick test_gnp_self_loops;
    Alcotest.test_case "gnp extremes" `Quick test_gnp_extremes;
    Alcotest.test_case "cycle_on" `Quick test_cycle_on;
    Alcotest.test_case "cycle singleton" `Quick test_cycle_singleton;
    Alcotest.test_case "strongly_connected_on" `Quick test_strongly_connected_on;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "self_loops_only" `Quick test_self_loops_only;
    Alcotest.test_case "sprinkle" `Quick test_sprinkle;
    Alcotest.test_case "dot digraph" `Quick test_dot_digraph;
    Alcotest.test_case "dot lgraph" `Quick test_dot_lgraph;
    Alcotest.test_case "dot components" `Quick test_dot_components;
  ]
