(* Tests for verifiable decision certificates. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_adversary
open Ssg_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run Algorithm 1 on [adv], capturing certificates with an on_round
   hook; returns (certificates, trace, inputs). *)
let run_with_certificates adv =
  let n = Adversary.n adv in
  let inputs = Array.init n (fun i -> i) in
  let rounds = Adversary.decision_horizon adv in
  let module E = Executor.Make (Kset_agreement.Alg) in
  let certs = ref [] in
  let cfg =
    E.config ~stop_when_all_decided:false
      ~on_round:(fun ~round ~graph:_ states ->
        certs := Certificate.capture states ~round @ !certs)
      ~inputs
      ~graphs:(Adversary.graph adv)
      ~max_rounds:rounds ()
  in
  let _ = E.run cfg in
  (!certs, Adversary.trace adv ~rounds, inputs)

let test_capture_one_per_root () =
  (* Clean partitioned run: exactly the root members publish
     certificates (followers adopt). *)
  let rng = Rng.of_int 1 in
  let adv = Build.partitioned rng ~n:8 ~blocks:2 () in
  let certs, _, _ = run_with_certificates adv in
  let analysis =
    Ssg_skeleton.Analysis.analyze (Adversary.stable_skeleton adv)
  in
  let root_members =
    List.fold_left
      (fun acc root -> acc + Bitset.cardinal root)
      0
      (Ssg_skeleton.Analysis.roots analysis)
  in
  check_int "one certificate per root member" root_members
    (List.length certs);
  List.iter
    (fun c ->
      check "owner is a root member" true
        (Ssg_skeleton.Analysis.is_root analysis c.Certificate.owner))
    certs

let test_valid_certificates_verify () =
  let rng = Rng.of_int 2 in
  for _ = 1 to 10 do
    let adv = Build.block_sources rng ~n:7 ~k:2 ~prefix_len:2 () in
    let certs, trace, inputs = run_with_certificates adv in
    check "some certificates" true (certs <> []);
    List.iter
      (fun c ->
        match Certificate.verify c ~trace ~inputs with
        | `Valid -> ()
        | `Valid_but_dissolved ->
            (* possible under prefix noise; still a passing audit *)
            ()
        | `Invalid reason -> Alcotest.fail ("unexpected rejection: " ^ reason))
      certs
  done

let test_forged_edge_rejected () =
  let rng = Rng.of_int 3 in
  let adv = Build.partitioned rng ~n:6 ~blocks:2 () in
  let certs, trace, inputs = run_with_certificates adv in
  match certs with
  | c :: _ ->
      let forged = Lgraph.copy c.Certificate.graph in
      (* add an edge that was never timely: pick one absent from the
         skeleton at its claimed round *)
      let skel = Adversary.stable_skeleton adv in
      let found = ref None in
      for a = 0 to 5 do
        for b = 0 to 5 do
          if !found = None && a <> b && not (Digraph.mem_edge skel a b) then
            found := Some (a, b)
        done
      done;
      (match !found with
      | Some (a, b) ->
          Lgraph.set_edge forged a b ~label:c.Certificate.round;
          let c' = { c with Certificate.graph = forged } in
          (match Certificate.verify c' ~trace ~inputs with
          | `Invalid _ -> ()
          | _ -> Alcotest.fail "forged edge accepted")
      | None -> Alcotest.fail "no absent edge to forge")
  | [] -> Alcotest.fail "no certificate captured"

let test_stale_label_rejected () =
  let rng = Rng.of_int 4 in
  let adv = Build.partitioned rng ~n:6 ~blocks:2 () in
  let certs, trace, inputs = run_with_certificates adv in
  match certs with
  | c :: _ ->
      let doctored = Lgraph.copy c.Certificate.graph in
      (* overwrite some edge's label with a stale round *)
      (match Lgraph.edges doctored with
      | (q', q, _) :: _ ->
          let stale = c.Certificate.round - 6 in
          if stale >= 1 then begin
            Lgraph.set_edge doctored q' q ~label:stale;
            match
              Certificate.verify
                { c with Certificate.graph = doctored }
                ~trace ~inputs
            with
            | `Invalid _ -> ()
            | _ -> Alcotest.fail "stale label accepted"
          end
      | [] -> Alcotest.fail "certificate without edges")
  | [] -> Alcotest.fail "no certificate captured"

let test_foreign_value_rejected () =
  let rng = Rng.of_int 5 in
  let adv = Build.partitioned rng ~n:6 ~blocks:2 () in
  let certs, trace, inputs = run_with_certificates adv in
  match certs with
  | c :: _ -> (
      match Certificate.verify { c with Certificate.value = 999 } ~trace ~inputs with
      | `Invalid _ -> ()
      | _ -> Alcotest.fail "foreign value accepted")
  | [] -> Alcotest.fail "no certificate captured"

let test_early_round_rejected () =
  let rng = Rng.of_int 6 in
  let adv = Build.partitioned rng ~n:6 ~blocks:2 () in
  let certs, trace, inputs = run_with_certificates adv in
  match certs with
  | c :: _ -> (
      match Certificate.verify { c with Certificate.round = 3 } ~trace ~inputs with
      | `Invalid _ -> ()
      | _ -> Alcotest.fail "early round accepted")
  | [] -> Alcotest.fail "no certificate captured"

let test_dissolved_detected_on_e9_run () =
  (* The minimal Theorem 16 counterexample: p3's certificate passes every
     local check but its component has dissolved — verify reports it. *)
  let stable =
    Digraph.of_edges 3 [ (0, 0); (1, 1); (2, 2); (1, 0); (0, 2); (1, 2) ]
  in
  let round1 = Digraph.copy stable in
  Digraph.add_edge round1 2 1;
  let adv = Adversary.make ~name:"minimal-e9" ~prefix:[| round1 |] ~stable in
  let certs, trace, inputs = run_with_certificates adv in
  let dissolved =
    List.filter
      (fun c ->
        Certificate.verify c ~trace ~inputs = `Valid_but_dissolved)
      certs
  in
  check "a dissolved-but-honest certificate exists" true (dissolved <> [])

let prop_clean_runs_fully_valid =
  QCheck2.Test.make ~count:60
    ~name:"clean-run certificates verify as Valid (not dissolved)"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 4 + Rng.int rng 6 in
      let adv =
        match Rng.int rng 2 with
        | 0 -> Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ()
        | _ -> Build.block_sources rng ~n ~k:(1 + Rng.int rng 3) ()
      in
      let certs, trace, inputs = run_with_certificates adv in
      certs <> []
      && List.for_all
           (fun c -> Certificate.verify c ~trace ~inputs = `Valid)
           certs)

let tests =
  [
    Alcotest.test_case "capture: one per root member" `Quick
      test_capture_one_per_root;
    Alcotest.test_case "valid certificates verify" `Quick
      test_valid_certificates_verify;
    Alcotest.test_case "forged edge rejected" `Quick test_forged_edge_rejected;
    Alcotest.test_case "stale label rejected" `Quick test_stale_label_rejected;
    Alcotest.test_case "foreign value rejected" `Quick test_foreign_value_rejected;
    Alcotest.test_case "early round rejected" `Quick test_early_round_rejected;
    Alcotest.test_case "E9 dissolution detected" `Quick
      test_dissolved_detected_on_e9_run;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_clean_runs_fully_valid ]
