(* Tests for the application layer: leader election and renaming. *)

open Ssg_util
open Ssg_graph
open Ssg_skeleton
open Ssg_adversary
open Ssg_apps

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Drive a full system of Leader observers against an adversary. *)
let drive_leaders adv ~rounds =
  let n = Adversary.n adv in
  let obs = Array.init n (fun self -> Leader.create ~n ~self) in
  for round = 1 to rounds do
    let graph = Adversary.graph adv round in
    let payloads = Array.map Leader.message obs in
    Array.iteri
      (fun q o ->
        Leader.step o ~round ~received:(fun p ->
            if Digraph.mem_edge graph p q then Some payloads.(p) else None))
      obs
  done;
  obs

let settle_rounds adv = Adversary.prefix_length adv + (2 * Adversary.n adv) + 2

let test_leader_initial () =
  let o = Leader.create ~n:4 ~self:2 in
  check_int "initially self" 2 (Leader.leader o)

let test_leader_synchronous () =
  let adv = Build.synchronous ~n:6 in
  let obs = drive_leaders adv ~rounds:(settle_rounds adv) in
  Array.iter (fun o -> check_int "everyone elects 0" 0 (Leader.leader o)) obs

let test_leader_per_root_component () =
  let rng = Rng.of_int 5 in
  for _ = 1 to 15 do
    let adv = Build.partitioned rng ~n:9 ~blocks:3 () in
    let analysis = Analysis.analyze (Adversary.stable_skeleton adv) in
    let obs = drive_leaders adv ~rounds:(settle_rounds adv) in
    List.iter
      (fun root ->
        let expected = Bitset.min_elt root in
        Bitset.iter
          (fun p ->
            check_int
              (Printf.sprintf "member %d elects min of its island" p)
              expected
              (Leader.leader obs.(p)))
          root)
      (Analysis.roots analysis)
  done

let test_leader_followers () =
  (* Below a single root, followers adopt that root's leader. *)
  let rng = Rng.of_int 6 in
  for _ = 1 to 10 do
    let adv = Build.single_root rng ~n:8 () in
    let analysis = Analysis.analyze (Adversary.stable_skeleton adv) in
    let expected = Bitset.min_elt (List.hd (Analysis.roots analysis)) in
    let obs = drive_leaders adv ~rounds:(settle_rounds adv) in
    Array.iter
      (fun o -> check_int "follower adopts root leader" expected (Leader.leader o))
      obs
  done

let test_leader_stability () =
  (* After settling, the leader estimate never changes again. *)
  let rng = Rng.of_int 7 in
  let adv = Build.block_sources rng ~n:7 ~k:2 ~prefix_len:3 () in
  let n = 7 in
  let obs = Array.init n (fun self -> Leader.create ~n ~self) in
  let settled = ref [||] in
  let horizon = settle_rounds adv + 10 in
  for round = 1 to horizon do
    let graph = Adversary.graph adv round in
    let payloads = Array.map Leader.message obs in
    Array.iteri
      (fun q o ->
        Leader.step o ~round ~received:(fun p ->
            if Digraph.mem_edge graph p q then Some payloads.(p) else None))
      obs;
    if round = settle_rounds adv then
      settled := Array.map Leader.leader obs
    else if round > settle_rounds adv then
      Array.iteri
        (fun p o ->
          check_int
            (Printf.sprintf "round %d: leader of %d stable" round p)
            !settled.(p) (Leader.leader o))
        obs
  done

let test_leader_accuracy () =
  (* The elected leader is always a member of a root component. *)
  let rng = Rng.of_int 8 in
  for _ = 1 to 10 do
    let adv = Build.partitioned rng ~n:8 ~blocks:2 ~prefix_len:2 () in
    let analysis = Analysis.analyze (Adversary.stable_skeleton adv) in
    let obs = drive_leaders adv ~rounds:(settle_rounds adv) in
    Array.iter
      (fun o -> check "leader is a root member" true
          (Analysis.is_root analysis (Leader.leader o)))
      obs
  done

(* --- Renaming --- *)

let test_assign_basic () =
  let r = Renaming.assign ~n:4 [| 7; 7; 3; 7 |] in
  Alcotest.(check (list int)) "anchors" [ 3; 7 ] r.Renaming.anchors;
  (* anchor 3 has rank 0; anchor 7 rank 1; offsets by pid order *)
  Alcotest.(check (array int)) "names" [| 4; 5; 0; 6 |] r.Renaming.new_names;
  check_int "bound" 8 (Renaming.bound r ~n:4)

let test_assign_injective_property () =
  let rng = Rng.of_int 9 in
  for _ = 1 to 50 do
    let n = 2 + Rng.int rng 10 in
    let decisions = Array.init n (fun _ -> Rng.int rng 5) in
    let r = Renaming.assign ~n decisions in
    let sorted = Array.copy r.Renaming.new_names in
    Array.sort compare sorted;
    let distinct = Array.length sorted = n &&
      Array.for_all Fun.id (Array.mapi (fun i v -> i = 0 || sorted.(i-1) <> v) sorted)
    in
    check "injective" true distinct;
    check "within bound" true
      (Array.for_all (fun v -> v >= 0 && v < Renaming.bound r ~n) r.Renaming.new_names)
  done

let test_assign_validation () =
  check "bad size" true
    (try ignore (Renaming.assign ~n:3 [| 1 |]); false
     with Invalid_argument _ -> true)

let test_run_end_to_end () =
  let rng = Rng.of_int 10 in
  let adv = Build.block_sources rng ~n:8 ~k:3 () in
  let names = Array.init 8 (fun i -> 1000 + (97 * i)) in
  let r, outcome = Renaming.run adv ~names in
  check "at most k anchors" true (List.length r.Renaming.anchors <= 3);
  check "anchors were proposed" true
    (List.for_all (fun a -> Array.mem a names) r.Renaming.anchors);
  check "all decided" true (Ssg_rounds.Executor.all_decided outcome);
  check "names in reduced space" true
    (Array.for_all (fun v -> v < 24) r.Renaming.new_names)

(* --- Repeated agreement --- *)

let test_repeated_partitioned_logs () =
  (* A replicated log per partition: every island's members end with
     identical fully-decided logs; different islands differ. *)
  let rng = Rng.of_int 11 in
  let adv = Build.partitioned rng ~n:9 ~blocks:3 () in
  let analysis = Analysis.analyze (Adversary.stable_skeleton adv) in
  let instances = 5 in
  let proposals i = Array.init 9 (fun p -> (100 * i) + p) in
  let results =
    Repeated.run adv ~proposals ~instances
      ~window:(Repeated.default_window adv)
  in
  check_int "five instances" instances (List.length results);
  List.iter
    (fun root ->
      check "island log agreement" true
        (Repeated.logs_agree results ~members:root))
    (Analysis.roots analysis);
  (* two distinct islands have different logs (distinct proposals) *)
  let roots = Analysis.roots analysis in
  let l0 = Repeated.log_of results (Bitset.min_elt (List.nth roots 0)) in
  let l1 = Repeated.log_of results (Bitset.min_elt (List.nth roots 1)) in
  check "island logs differ" true (l0 <> l1);
  (* every instance respects the k bound *)
  List.iter
    (fun r -> check "per-instance k bound" true (r.Repeated.distinct <= 3))
    results

let test_repeated_windows_use_progressing_rounds () =
  (* The prefix noise only affects instance 0: later instances run on the
     stable suffix and behave identically. *)
  let rng = Rng.of_int 12 in
  let adv = Build.block_sources rng ~n:6 ~k:2 ~prefix_len:4 ~noise:0.5 () in
  let results =
    Repeated.run adv
      ~proposals:(fun _ -> Ssg_sim.Runner.distinct_inputs 6)
      ~instances:3
      ~window:(Repeated.default_window adv)
  in
  match results with
  | [ _; r1; r2 ] ->
      check "later instances identical" true
        (r1.Repeated.decisions = r2.Repeated.decisions);
      check_int "instance rounds offset" (1 + Repeated.default_window adv)
        r1.Repeated.first_round
  | _ -> Alcotest.fail "expected three instances"

let test_repeated_validation () =
  let adv = Build.synchronous ~n:3 in
  check "zero window" true
    (try
       ignore (Repeated.run adv ~proposals:(fun _ -> [| 1; 2; 3 |]) ~instances:1 ~window:0);
       false
     with Invalid_argument _ -> true);
  check "zero instances" true
    (try
       ignore (Repeated.run adv ~proposals:(fun _ -> [| 1; 2; 3 |]) ~instances:0 ~window:5);
       false
     with Invalid_argument _ -> true)

let tests =
  [
    Alcotest.test_case "repeated partitioned logs" `Quick
      test_repeated_partitioned_logs;
    Alcotest.test_case "repeated windows progress" `Quick
      test_repeated_windows_use_progressing_rounds;
    Alcotest.test_case "repeated validation" `Quick test_repeated_validation;
    Alcotest.test_case "leader initial" `Quick test_leader_initial;
    Alcotest.test_case "leader synchronous" `Quick test_leader_synchronous;
    Alcotest.test_case "leader per root component" `Quick
      test_leader_per_root_component;
    Alcotest.test_case "leader followers" `Quick test_leader_followers;
    Alcotest.test_case "leader stability" `Quick test_leader_stability;
    Alcotest.test_case "leader accuracy" `Quick test_leader_accuracy;
    Alcotest.test_case "renaming assign" `Quick test_assign_basic;
    Alcotest.test_case "renaming injective" `Quick test_assign_injective_property;
    Alcotest.test_case "renaming validation" `Quick test_assign_validation;
    Alcotest.test_case "renaming end to end" `Quick test_run_end_to_end;
  ]
