(* System-level property tests: random run descriptions (drawn from the
   whole generator zoo via a seed, so QCheck can shrink the seed) against
   the paper's global invariants. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_adversary
open Ssg_sim

(* A generator of adversaries driven by a single shrinkable seed. *)
let adversary_of_seed seed =
  let rng = Rng.of_int seed in
  let n = 3 + Rng.int rng 8 in
  match Rng.int rng 6 with
  | 0 ->
      Build.block_sources rng ~n ~k:(1 + Rng.int rng (n - 1))
        ~prefix_len:(Rng.int rng 5) ~noise:(Rng.float rng *. 0.5) ()
  | 1 ->
      Build.partitioned rng ~n
        ~blocks:(1 + Rng.int rng (min 3 n))
        ~prefix_len:(Rng.int rng 4) ()
  | 2 -> Build.single_root rng ~n ~prefix_len:(Rng.int rng 4) ()
  | 3 ->
      Build.arbitrary rng ~n
        ~density:(0.1 +. (Rng.float rng *. 0.4))
        ~prefix_len:(Rng.int rng 5) ~noise:0.4 ()
  | 4 -> Build.lower_bound ~n ~k:(1 + Rng.int rng (n - 1))
  | _ ->
      Build.with_recurrent_noise rng
        (Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ())
        ~noise:(Rng.float rng *. 0.3)

let gen_adv = QCheck2.Gen.map adversary_of_seed QCheck2.Gen.(int_bound 1_000_000)

let prop name ?(count = 150) f = QCheck2.Test.make ~count ~name gen_adv f

let props =
  [
    prop "Theorem 1: roots <= min_k on any run" (fun adv ->
        let a = Analysis.analyze (Adversary.stable_skeleton adv) in
        Analysis.root_count a <= Adversary.min_k adv);
    prop "validity and termination on any run" (fun adv ->
        let r = Runner.run_kset adv in
        Metrics.validity ~inputs:r.Runner.inputs r.Runner.outcome
        && Metrics.termination r.Runner.outcome);
    prop "repaired rule: k-agreement at min_k on any run" ~count:100
      (fun adv ->
        let n = Adversary.n adv in
        let v = Ssg_core.Kset_agreement.make_alg ~confirm_rounds:n () in
        let rounds = Adversary.prefix_length adv + (3 * n) + 4 in
        let r = Runner.run_kset ~variant:v ~rounds adv in
        Metrics.k_agreement ~k:r.Runner.min_k r.Runner.outcome
        && Metrics.termination r.Runner.outcome);
    prop "decision values are a subset of root-reachable inputs" ~count:100
      (fun adv ->
        (* every decided value was proposed by a process that can reach
           the decider through the executed graphs — weak validity with
           provenance; with identity inputs: value = proposer id *)
        let r = Runner.run_kset adv in
        let horizon = r.Runner.outcome.Executor.rounds_run in
        let trace = Adversary.trace adv ~rounds:(max 1 horizon) in
        let union =
          let g = Digraph.create (Adversary.n adv) in
          Trace.iter (fun _ round_g -> Digraph.union_into ~into:g round_g) trace;
          g
        in
        Array.for_all Fun.id
          (Array.mapi
             (fun p d ->
               match d with
               | None -> true
               | Some { Executor.value; _ } ->
                   Reach.exists_path union value p)
             r.Runner.outcome.Executor.decisions));
    prop "skeleton of description equals skeleton of materialized trace"
      (fun adv ->
        let t = Adversary.trace adv ~rounds:(Adversary.decision_horizon adv) in
        Digraph.equal (Adversary.stable_skeleton adv) (Skeleton.final t));
    prop "monitors clean on the paper algorithm" ~count:60 (fun adv ->
        let r = Runner.run_kset ~monitor:true adv in
        r.Runner.violations = []);
    prop "first decision never before round n" ~count:100 (fun adv ->
        let r = Runner.run_kset adv in
        match Metrics.first_decision_round r.Runner.outcome with
        | Some f -> f >= Adversary.n adv
        | None -> false);
    prop "messages sent = n^2 per executed round" ~count:60 (fun adv ->
        let r = Runner.run_kset adv in
        let n = Adversary.n adv in
        r.Runner.outcome.Executor.messages_sent
        = n * n * r.Runner.outcome.Executor.rounds_run);
  ]

let tests = List.map QCheck_alcotest.to_alcotest props
