(* Tests for Ssg_graph.Digraph. *)

open Ssg_util
open Ssg_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create () =
  let g = Digraph.create 5 in
  check_int "order" 5 (Digraph.order g);
  check_int "edges" 0 (Digraph.edge_count g);
  check "no edge" false (Digraph.mem_edge g 0 1)

let test_add_remove () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 1 2;
  check "directed" true (Digraph.mem_edge g 1 2);
  check "not reversed" false (Digraph.mem_edge g 2 1);
  Digraph.add_edge g 1 2;
  check_int "idempotent" 1 (Digraph.edge_count g);
  Digraph.remove_edge g 1 2;
  check_int "removed" 0 (Digraph.edge_count g)

let test_succ_pred_consistency () =
  let rng = Rng.of_int 3 in
  let g = Gen.gnp rng 20 0.3 in
  (* succ/pred must mirror each other after arbitrary mutation. *)
  Digraph.remove_edge g 0 0;
  Digraph.remove_edge g 3 7;
  Digraph.add_edge g 7 3;
  for p = 0 to 19 do
    for q = 0 to 19 do
      Alcotest.(check bool)
        (Printf.sprintf "mirror %d %d" p q)
        (Bitset.mem (Digraph.succs g p) q)
        (Bitset.mem (Digraph.preds g q) p)
    done
  done

let test_complete () =
  let g = Digraph.complete ~self_loops:true 4 in
  check_int "edges with loops" 16 (Digraph.edge_count g);
  check "self loop" true (Digraph.mem_edge g 2 2);
  check "all self loops" true (Digraph.has_all_self_loops g);
  let g = Digraph.complete ~self_loops:false 4 in
  check_int "edges without loops" 12 (Digraph.edge_count g);
  check "no self loops" false (Digraph.has_all_self_loops g)

let test_degrees () =
  let g = Digraph.of_edges 4 [ (0, 1); (0, 2); (3, 1) ] in
  check_int "out 0" 2 (Digraph.out_degree g 0);
  check_int "in 1" 2 (Digraph.in_degree g 1);
  check_int "in 0" 0 (Digraph.in_degree g 0)

let test_edges_roundtrip () =
  let es = [ (0, 1); (1, 2); (2, 0); (2, 2) ] in
  let g = Digraph.of_edges 3 es in
  Alcotest.(check (list (pair int int))) "edges sorted" (List.sort compare es)
    (Digraph.edges g)

let test_inter_union () =
  let a = Digraph.of_edges 3 [ (0, 1); (1, 2) ] in
  let b = Digraph.of_edges 3 [ (1, 2); (2, 0) ] in
  Alcotest.(check (list (pair int int))) "inter" [ (1, 2) ]
    (Digraph.edges (Digraph.inter a b));
  Alcotest.(check (list (pair int int))) "union" [ (0, 1); (1, 2); (2, 0) ]
    (Digraph.edges (Digraph.union a b));
  check "inter leaves inputs" true (Digraph.mem_edge a 0 1)

let test_inter_into_preds () =
  let a = Digraph.of_edges 3 [ (0, 1); (1, 2); (2, 1) ] in
  let b = Digraph.of_edges 3 [ (0, 1) ] in
  Digraph.inter_into ~into:a b;
  (* pred rows must be updated too *)
  check "pred row updated" true (Bitset.is_empty (Digraph.preds a 2));
  Alcotest.(check (list int)) "pred of 1" [ 0 ] (Bitset.elements (Digraph.preds a 1))

let test_subgraph_of () =
  let a = Digraph.of_edges 3 [ (0, 1) ] in
  let b = Digraph.of_edges 3 [ (0, 1); (1, 2) ] in
  check "subset" true (Digraph.subgraph_of a b);
  check "not superset" false (Digraph.subgraph_of b a)

let test_induced () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 1) ] in
  let sub = Digraph.induced g (Bitset.of_list 4 [ 1; 2 ]) in
  Alcotest.(check (list (pair int int))) "induced edges" [ (1, 1); (1, 2) ]
    (Digraph.edges sub);
  check "pred consistent" true (Bitset.mem (Digraph.preds sub 2) 1)

let test_transpose () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 2) ] in
  let t = Digraph.transpose g in
  Alcotest.(check (list (pair int int))) "transposed" [ (1, 0); (2, 1) ]
    (Digraph.edges t)

let test_equal_copy () =
  let g = Digraph.of_edges 3 [ (0, 1) ] in
  let h = Digraph.copy g in
  check "copies equal" true (Digraph.equal g h);
  Digraph.add_edge h 1 0;
  check "copy independent" false (Digraph.equal g h)

let test_inter_preds_into () =
  let g = Digraph.of_edges 4 [ (0, 2); (1, 2); (3, 2) ] in
  let pt = Bitset.of_list 4 [ 0; 1; 2 ] in
  Digraph.inter_preds_into g 2 ~into:pt;
  Alcotest.(check (list int)) "PT update" [ 0; 1 ] (Bitset.elements pt)

let test_order_mismatch () =
  let a = Digraph.create 3 and b = Digraph.create 4 in
  Alcotest.check_raises "inter mismatch"
    (Invalid_argument "Digraph: order mismatch (3 vs 4)") (fun () ->
      ignore (Digraph.inter a b))

let test_node_out_of_range () =
  let g = Digraph.create 3 in
  Alcotest.check_raises "bad node"
    (Invalid_argument "Digraph: node 3 out of range [0, 3)") (fun () ->
      Digraph.add_edge g 0 3)

(* Property: inter/union behave like edge-set operations. *)

let gen_graph =
  QCheck2.Gen.(
    let n = 12 in
    let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
    map (Digraph.of_edges n) (list_size (int_bound 40) edge))

let module_edges g = List.sort_uniq compare (Digraph.edges g)

let props =
  [
    QCheck2.Test.make ~count:200 ~name:"edge_count = |edges|" gen_graph
      (fun g -> Digraph.edge_count g = List.length (module_edges g));
    QCheck2.Test.make ~count:200 ~name:"inter = list intersection"
      (QCheck2.Gen.pair gen_graph gen_graph) (fun (a, b) ->
        let expected =
          List.filter (fun e -> List.mem e (module_edges b)) (module_edges a)
        in
        module_edges (Digraph.inter a b) = expected);
    QCheck2.Test.make ~count:200 ~name:"union = list union"
      (QCheck2.Gen.pair gen_graph gen_graph) (fun (a, b) ->
        let expected =
          List.sort_uniq compare (module_edges a @ module_edges b)
        in
        module_edges (Digraph.union a b) = expected);
    QCheck2.Test.make ~count:200 ~name:"transpose involutive" gen_graph
      (fun g -> Digraph.equal (Digraph.transpose (Digraph.transpose g)) g);
    QCheck2.Test.make ~count:200 ~name:"inter subgraph of both"
      (QCheck2.Gen.pair gen_graph gen_graph) (fun (a, b) ->
        let i = Digraph.inter a b in
        Digraph.subgraph_of i a && Digraph.subgraph_of i b);
  ]

let tests =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "succ/pred mirror" `Quick test_succ_pred_consistency;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "degrees" `Quick test_degrees;
    Alcotest.test_case "edges roundtrip" `Quick test_edges_roundtrip;
    Alcotest.test_case "inter/union" `Quick test_inter_union;
    Alcotest.test_case "inter_into updates preds" `Quick test_inter_into_preds;
    Alcotest.test_case "subgraph_of" `Quick test_subgraph_of;
    Alcotest.test_case "induced" `Quick test_induced;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "equal/copy" `Quick test_equal_copy;
    Alcotest.test_case "inter_preds_into (PT update)" `Quick test_inter_preds_into;
    Alcotest.test_case "order mismatch" `Quick test_order_mismatch;
    Alcotest.test_case "node out of range" `Quick test_node_out_of_range;
  ]
  @ List.map QCheck_alcotest.to_alcotest props
