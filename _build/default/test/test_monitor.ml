(* Tests for the lemma monitors: silent on the real algorithm, loud on
   injected faults. *)

open Ssg_util
open Ssg_graph
open Ssg_adversary
open Ssg_core
open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_clean_on_paper_algorithm () =
  let adv = Build.figure1 () in
  let r = Runner.run_kset ~monitor:true adv in
  Alcotest.(check (list string)) "no violations" [] r.Runner.violations

let test_detects_missing_purge () =
  let rng = Rng.of_int 1 in
  let adv = Build.block_sources rng ~n:8 ~k:2 ~prefix_len:3 ~noise:0.5 () in
  let v = Kset_agreement.make_alg ~enable_purge:false () in
  let r = Runner.run_kset ~variant:v ~monitor:true adv in
  check "violations found" true (r.Runner.violations <> []);
  check "mentions Obs1 or Lemma7" true
    (List.exists
       (fun s ->
         let has needle =
           let nl = String.length needle and hl = String.length s in
           let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
           go 0
         in
         has "Obs1" || has "Lemma7")
       r.Runner.violations)

let test_detects_missing_prune_nontermination () =
  (* Without Line 25, transient foreign nodes stay in G_p forever, the
     graph never turns strongly connected, and nobody decides. *)
  let rng = Rng.of_int 2 in
  let adv = Build.partitioned rng ~n:8 ~blocks:2 ~prefix_len:3 ~noise:0.4 () in
  let v = Kset_agreement.make_alg ~enable_prune:false () in
  let r = Runner.run_kset ~variant:v ~rounds:80 adv in
  check "termination lost" false (Metrics.termination r.Runner.outcome);
  (* and the paper's algorithm terminates on the same run *)
  let r = Runner.run_kset adv in
  check "paper terminates" true (Metrics.termination r.Runner.outcome)

let test_monitor_detects_forged_view () =
  (* Feed the monitor views that lie about PT: Lemma 3 must fire. *)
  let n = 3 in
  let m = Monitor.create ~n in
  let graph = Digraph.complete ~self_loops:true n in
  let views =
    Array.init n (fun self ->
        let g = Lgraph.create n ~self in
        (* claim an empty PT although the graph was complete *)
        { Monitor.pt = Bitset.of_list n [ self ]; approx = g })
  in
  Monitor.observe m ~round:1 ~graph views;
  check "lemma3 fired" true (Monitor.violations m <> []);
  check "not ok" false (Monitor.ok m)

let test_monitor_detects_fabricated_edge () =
  (* An edge that was never timely violates Lemma 6. *)
  let n = 3 in
  let m = Monitor.create ~n in
  let graph = Gen.self_loops_only n in
  let views =
    Array.init n (fun self ->
        let g = Lgraph.create n ~self in
        Lgraph.set_edge g self self ~label:1;
        if self = 0 then Lgraph.set_edge g 1 2 ~label:1;
        { Monitor.pt = Bitset.of_list n [ self ]; approx = g })
  in
  Monitor.observe m ~round:1 ~graph views;
  check "lemma6 fired" true
    (List.exists
       (fun s ->
         let nl = "Lemma6" in
         let rec go i =
           i + String.length nl <= String.length s
           && (String.sub s i (String.length nl) = nl || go (i + 1))
         in
         go 0)
       (Monitor.violations m))

let test_monitor_round_sequencing () =
  let m = Monitor.create ~n:2 in
  check "round 2 first rejected" true
    (try
       Monitor.observe m ~round:2 ~graph:(Gen.self_loops_only 2) [||];
       false
     with Invalid_argument _ -> true)

let test_finalize_empty_run () =
  let m = Monitor.create ~n:2 in
  Alcotest.(check (list string)) "nothing to report" [] (Monitor.finalize m)

let test_violation_cap () =
  (* Hundreds of injected faults are capped with a suppression note. *)
  let n = 4 in
  let m = Monitor.create ~n in
  let graph = Gen.self_loops_only n in
  for r = 1 to 100 do
    let views =
      Array.init n (fun self ->
          let g = Lgraph.create n ~self in
          Lgraph.set_edge g self self ~label:(max 1 r);
          (* lie about PT every round: 4 violations a round *)
          { Monitor.pt = Bitset.full n; approx = g })
    in
    Monitor.observe m ~round:r ~graph views
  done;
  let v = Monitor.finalize m in
  check "capped" true (List.length v <= 201);
  check "suppression notice present" true
    (List.exists
       (fun s -> String.length s > 0 && s.[0] = '(')
       v)

let test_view_of_kset () =
  let adv = Build.synchronous ~n:3 in
  let r = Runner.run_kset ~monitor:true adv in
  (* indirect: monitored run of the synchronous adversary stays clean *)
  Alcotest.(check (list string)) "clean" [] r.Runner.violations;
  check_int "n" 3 r.Runner.n

let tests =
  [
    Alcotest.test_case "clean on paper algorithm" `Quick
      test_clean_on_paper_algorithm;
    Alcotest.test_case "detects missing purge" `Quick test_detects_missing_purge;
    Alcotest.test_case "missing prune -> non-termination" `Quick
      test_detects_missing_prune_nontermination;
    Alcotest.test_case "detects forged PT" `Quick test_monitor_detects_forged_view;
    Alcotest.test_case "detects fabricated edge" `Quick
      test_monitor_detects_fabricated_edge;
    Alcotest.test_case "round sequencing" `Quick test_monitor_round_sequencing;
    Alcotest.test_case "finalize empty run" `Quick test_finalize_empty_run;
    Alcotest.test_case "violation cap" `Quick test_violation_cap;
    Alcotest.test_case "view_of_kset" `Quick test_view_of_kset;
  ]
