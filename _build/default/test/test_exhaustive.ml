(* Tests for the exhaustive tiny-system model checker — and, through it,
   proof-grade regression pins for the Theorem 16 findings. *)

open Ssg_graph
open Ssg_adversary
open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_all_stable_graphs_count () =
  check_int "n=2" 4 (List.length (Exhaustive.all_stable_graphs ~n:2));
  check_int "n=3" 64 (List.length (Exhaustive.all_stable_graphs ~n:3));
  let gs = Exhaustive.all_stable_graphs ~n:3 in
  check "all have self loops" true (List.for_all Digraph.has_all_self_loops gs);
  (* all distinct *)
  let distinct =
    List.fold_left
      (fun acc g -> if List.exists (Digraph.equal g) acc then acc else g :: acc)
      [] gs
  in
  check_int "distinct" 64 (List.length distinct);
  check "too large rejected" true
    (try ignore (Exhaustive.all_stable_graphs ~n:6); false
     with Invalid_argument _ -> true)

let test_prefix_free_n3_all_clean () =
  (* Exhaustive over every run with skeleton stable from round 1: the
     regime where the paper's proof is airtight.  Any failure would be an
     implementation bug. *)
  let v = Exhaustive.check_prefix_free ~n:3 in
  check_int "runs" 64 v.Exhaustive.runs;
  check_int "thm1" 0 v.Exhaustive.theorem1_failures;
  check_int "paper agreement" 0 v.Exhaustive.agreement_failures;
  check_int "strict agreement" 0 v.Exhaustive.strict_agreement_failures;
  check_int "validity" 0 v.Exhaustive.validity_failures;
  check_int "termination" 0 v.Exhaustive.termination_failures;
  check_int "repaired agreement" 0 v.Exhaustive.repaired_agreement_failures;
  check_int "repaired termination" 0 v.Exhaustive.repaired_termination_failures

let test_one_round_prefixes_n3_pins_the_gap () =
  (* The exhaustive sweep is deterministic: exactly 20 of the 4096 runs
     defeat the paper's (r >= n) rule; none defeat the strict reading at
     this size; none defeat the repair.  This pins the Theorem 16 finding
     numerically so any behavioural change is flagged. *)
  let v = Exhaustive.check_with_one_round_prefixes ~n:3 in
  check_int "runs" 4096 v.Exhaustive.runs;
  check_int "thm1" 0 v.Exhaustive.theorem1_failures;
  check_int "paper rule failures" 20 v.Exhaustive.agreement_failures;
  check_int "strict rule failures" 0 v.Exhaustive.strict_agreement_failures;
  check_int "repaired failures" 0 v.Exhaustive.repaired_agreement_failures;
  check_int "repaired non-termination" 0 v.Exhaustive.repaired_termination_failures;
  match v.Exhaustive.counterexample with
  | None -> Alcotest.fail "expected a counterexample witness"
  | Some adv ->
      (* the witness really does defeat the paper's rule *)
      let mk = Adversary.min_k adv in
      let r = Runner.run_kset adv in
      check "witness violates" true
        (Metrics.distinct_decisions r.Runner.outcome > mk);
      (* and the repair fixes exactly this run *)
      let n = Adversary.n adv in
      let rep = Ssg_core.Kset_agreement.make_alg ~confirm_rounds:n () in
      let r2 =
        Runner.run_kset ~variant:rep
          ~rounds:(Adversary.prefix_length adv + (3 * n) + 4)
          adv
      in
      check "repair fixes witness" true
        (Metrics.distinct_decisions r2.Runner.outcome <= mk)

let test_minimal_counterexample_by_hand () =
  (* The smallest witness, spelled out: 3 processes; round 1 additionally
     carries p3 -> p2; from round 2 on the graph is fixed with root {p2}.
     Psrcs(1) holds (everyone perpetually hears p2), so consensus is
     required — but p3 certifies the stale {p2,p3} cycle at round 3 and
     decides its stale minimum, while p2 decides its own value. *)
  let stable = Digraph.of_edges 3 [ (0, 0); (1, 1); (2, 2); (1, 0); (0, 2); (1, 2) ] in
  let round1 = Digraph.copy stable in
  Digraph.add_edge round1 2 1;
  let adv = Adversary.make ~name:"minimal" ~prefix:[| round1 |] ~stable in
  check_int "min_k = 1 (consensus required)" 1 (Adversary.min_k adv);
  let r = Runner.run_kset adv in
  check_int "paper rule: 2 values" 2
    (Metrics.distinct_decisions r.Runner.outcome);
  let strict = Ssg_core.Kset_agreement.make_alg ~strict_guard:true () in
  let r = Runner.run_kset ~variant:strict adv in
  check_int "strict guard saves this one" 1
    (Metrics.distinct_decisions r.Runner.outcome);
  let rep = Ssg_core.Kset_agreement.make_alg ~confirm_rounds:3 () in
  let r = Runner.run_kset ~variant:rep ~rounds:14 adv in
  check_int "repair: consensus" 1 (Metrics.distinct_decisions r.Runner.outcome)

let test_strict_guard_not_sufficient_in_general () =
  (* A targeted hunt (seeds fixed) shows the strict reading also fails
     once n >= 4 and prefixes are longer; the repair fixes those runs. *)
  let strict = Ssg_core.Kset_agreement.make_alg ~strict_guard:true () in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < 20000 do
    let rng = Ssg_util.Rng.of_int (777000 + !i) in
    let plen = 1 + Ssg_util.Rng.int rng 4 in
    let adv =
      Build.block_sources rng ~n:4 ~k:(1 + Ssg_util.Rng.int rng 2)
        ~prefix_len:plen ~noise:0.5 ()
    in
    let mk = Adversary.min_k adv in
    let r = Runner.run_kset ~variant:strict adv in
    if Metrics.distinct_decisions r.Runner.outcome > mk then found := Some (adv, mk);
    incr i
  done;
  match !found with
  | None -> Alcotest.fail "no strict-guard violation found at n=4 (rule changed?)"
  | Some (adv, mk) ->
      let rep = Ssg_core.Kset_agreement.make_alg ~confirm_rounds:4 () in
      let r =
        Runner.run_kset ~variant:rep
          ~rounds:(Adversary.prefix_length adv + 16)
          adv
      in
      check "repair fixes strict-guard counterexample" true
        (Metrics.distinct_decisions r.Runner.outcome <= mk)

let tests =
  [
    Alcotest.test_case "graph enumeration" `Quick test_all_stable_graphs_count;
    Alcotest.test_case "n=3 prefix-free all clean (exhaustive)" `Quick
      test_prefix_free_n3_all_clean;
    Alcotest.test_case "n=3 one-round prefixes pin the gap (exhaustive)" `Slow
      test_one_round_prefixes_n3_pins_the_gap;
    Alcotest.test_case "minimal counterexample by hand" `Quick
      test_minimal_counterexample_by_hand;
    Alcotest.test_case "strict guard insufficient in general" `Slow
      test_strict_guard_not_sufficient_in_general;
  ]
