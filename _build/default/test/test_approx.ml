(* Tests for the stable-skeleton approximation (Approx) — the executable
   content of Section IV-A: Observation 1, Lemmas 3–7, Theorem 8.

   Strategy: drive a full system of Approx instances by hand against
   generated adversaries (any predicate — the approximation must be correct
   regardless), tracking ground-truth skeletons, and assert each lemma
   statement directly.  The Monitor module repeats these checks online; here
   we also cover Lemma 4 (path propagation), which the monitor skips. *)

open Ssg_util
open Ssg_graph
open Ssg_skeleton
open Ssg_adversary
open Ssg_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run n Approx instances for [rounds] rounds against an adversary,
   calling [observe ~round states skeletons] after each round, where
   [skeletons.(r-1)] is G^∩r. *)
let drive ?(enable_purge = true) ?(enable_prune = true) adv ~rounds ~observe =
  let n = Adversary.n adv in
  let states =
    Array.init n (fun self ->
        Approx.create ~enable_purge ~enable_prune ~n ~self ())
  in
  let skel = Skeleton.start ~n in
  let skeletons = ref [] in
  for r = 1 to rounds do
    let graph = Adversary.graph adv r in
    ignore (Skeleton.absorb skel graph);
    skeletons := Skeleton.current skel :: !skeletons;
    let payloads = Array.map Approx.message states in
    Array.iteri
      (fun q s ->
        Approx.step s ~round:r ~received:(fun p ->
            if Digraph.mem_edge graph p q then Some payloads.(p) else None))
      states;
    observe ~round:r states (Array.of_list (List.rev !skeletons))
  done;
  states

let adversaries seed =
  let rng = Rng.of_int seed in
  [
    Build.figure1 ();
    Build.block_sources rng ~n:7 ~k:3 ~prefix_len:3 ~noise:0.4 ();
    Build.partitioned rng ~n:6 ~blocks:2 ~prefix_len:2 ();
    Build.arbitrary rng ~n:6 ~density:0.3 ~prefix_len:4 ~noise:0.5 ();
    Build.lower_bound ~n:6 ~k:3;
    Build.with_recurrent_noise rng (Build.partitioned rng ~n:6 ~blocks:2 ()) ~noise:0.3;
  ]

let for_all_adversaries f = List.iter f (adversaries 42)

let test_observation1 () =
  for_all_adversaries (fun adv ->
      let n = Adversary.n adv in
      ignore
        (drive adv ~rounds:(2 * n) ~observe:(fun ~round states _ ->
             Array.iteri
               (fun p s ->
                 let g = Approx.graph_view s in
                 check "owner present" true (Lgraph.mem_node g p);
                 Lgraph.iter_edges g (fun _ _ l ->
                     check "no stale label" true (l > round - n)))
               states)))

let test_lemma3 () =
  (* PT_p = PT(p, r), and the (q -> p) edge label is r iff q ∈ PT(p,r). *)
  for_all_adversaries (fun adv ->
      let n = Adversary.n adv in
      ignore
        (drive adv ~rounds:(2 * n) ~observe:(fun ~round states skels ->
             let skel = skels.(round - 1) in
             Array.iteri
               (fun p s ->
                 let pt_true = Digraph.preds skel p in
                 check "PT matches" true (Bitset.equal (Approx.pt s) pt_true);
                 let g = Approx.graph_view s in
                 for q = 0 to n - 1 do
                   check "fresh label iff timely" true
                     ((Lgraph.label g q p = round) = Bitset.mem pt_true q)
                 done)
               states)))

let test_lemma4_path_propagation () =
  (* If p1 -> ... -> p(l+1) is a path in G^∩r (r >= n, l <= n-1), then for
     q ∈ PT(p1, r - l), G^r_{p(l+1)} has a (q -> p1) edge labelled in
     [r - l, r] (the paper's induction establishes the non-strict lower
     bound: the base-case label is exactly r - l).  We check it on the
     figure-1 run where the stable path p3 -> p4 -> p5 -> p6 exists. *)
  let adv = Build.figure1 () in
  let n = 6 in
  ignore
    (drive adv ~rounds:(2 * n) ~observe:(fun ~round states skels ->
         if round >= n then begin
           let skel = skels.(round - 1) in
           (* path 2 -> 3 -> 4 -> 5 (p3..p6), length 3 *)
           check "path in skeleton" true
             (Digraph.mem_edge skel 2 3 && Digraph.mem_edge skel 3 4
             && Digraph.mem_edge skel 4 5);
           let l = 3 in
           let pt_p1 = Digraph.preds skels.(round - l - 1) 2 in
           let g = Approx.graph_view states.(5) in
           Bitset.iter
             (fun q ->
               let lbl = Lgraph.label g q 2 in
               check
                 (Printf.sprintf "r=%d q=%d edge labelled in [r-l, r]" round q)
                 true
                 (lbl >= round - l && lbl <= round))
             pt_p1
         end))

let test_lemma5 () =
  (* r >= n: G^r_p ⊇ C^r_p (nodes and edges). *)
  for_all_adversaries (fun adv ->
      let n = Adversary.n adv in
      ignore
        (drive adv ~rounds:(2 * n) ~observe:(fun ~round states skels ->
             if round >= n then
               let skel = skels.(round - 1) in
               Array.iteri
                 (fun p s ->
                   let comp = Scc.component_containing skel p in
                   let g = Approx.graph_view s in
                   let nodes = Lgraph.nodes g in
                   check "component nodes present" true
                     (Bitset.subset comp nodes);
                   Bitset.iter
                     (fun q ->
                       Digraph.iter_preds skel q (fun q' ->
                           if Bitset.mem comp q' then
                             check "component edge present" true
                               (Lgraph.mem_edge g q' q)))
                     comp)
                 states)))

let test_lemma6 () =
  (* Every edge (q' --s--> q) in G^r_p satisfies q' ∈ PT(q, s). *)
  for_all_adversaries (fun adv ->
      let n = Adversary.n adv in
      ignore
        (drive adv ~rounds:(2 * n) ~observe:(fun ~round:_ states skels ->
             Array.iter
               (fun s ->
                 Lgraph.iter_edges (Approx.graph_view s) (fun q' q lbl ->
                     check "edge was timely at label round" true
                       (Digraph.mem_edge skels.(lbl - 1) q' q)))
               states)))

let test_lemma7 () =
  (* If G^r_p is strongly connected and r - n + 1 >= 1 then
     G^r_p ⊆ C^(r-n+1)_p. *)
  for_all_adversaries (fun adv ->
      let n = Adversary.n adv in
      ignore
        (drive adv ~rounds:(3 * n) ~observe:(fun ~round states skels ->
             if round >= n then
               Array.iteri
                 (fun p s ->
                   if Approx.is_strongly_connected s then begin
                     let base = skels.(round - n) in
                     let comp = Scc.component_containing base p in
                     let g = Approx.graph_view s in
                     check "nodes inside component" true
                       (Bitset.subset (Lgraph.nodes g) comp);
                     Lgraph.iter_edges g (fun q' q _ ->
                         check "edges inside skeleton" true
                           (Digraph.mem_edge base q' q))
                   end)
                 states)))

let test_theorem8 () =
  (* A strongly connected G^R_p (R >= n, past stabilization) contains the
     full stable component C^∞_q of each of its nodes. *)
  for_all_adversaries (fun adv ->
      let n = Adversary.n adv in
      let final_skel = Adversary.stable_skeleton adv in
      let rounds = Adversary.decision_horizon adv in
      ignore
        (drive adv ~rounds ~observe:(fun ~round states _ ->
             if round >= n then
               Array.iter
                 (fun s ->
                   if Approx.is_strongly_connected s then begin
                     let g = Approx.graph_view s in
                     let nodes = Lgraph.nodes g in
                     Bitset.iter
                       (fun q ->
                         let comp = Scc.component_containing final_skel q in
                         check "C∞ nodes contained" true
                           (Bitset.subset comp nodes);
                         Bitset.iter
                           (fun v ->
                             Digraph.iter_preds final_skel v (fun u ->
                                 if Bitset.mem comp u then
                                   check "C∞ edges contained" true
                                     (Lgraph.mem_edge g u v)))
                           comp)
                       nodes
                   end)
                 states)))

let test_root_members_become_strongly_connected () =
  (* Lemma 11's engine: members of a root component see a strongly
     connected approximation by stabilization + n - 1. *)
  for_all_adversaries (fun adv ->
      let n = Adversary.n adv in
      let analysis = Analysis.analyze (Adversary.stable_skeleton adv) in
      let horizon = Adversary.prefix_length adv + 1 + n in
      let states = drive adv ~rounds:horizon ~observe:(fun ~round:_ _ _ -> ()) in
      Array.iteri
        (fun p s ->
          if Analysis.is_root analysis p then
            check
              (Printf.sprintf "root member %d SC by %d" p horizon)
              true
              (Approx.is_strongly_connected s))
        states)

let test_approx_misuse () =
  let a = Approx.create ~n:3 ~self:0 () in
  check "out-of-order round" true
    (try
       Approx.step a ~round:2 ~received:(fun _ -> None);
       false
     with Invalid_argument _ -> true);
  check "bad self" true
    (try ignore (Approx.create ~n:3 ~self:3 ()); false
     with Invalid_argument _ -> true)

let test_message_is_copy () =
  let a = Approx.create ~n:2 ~self:0 () in
  let m = Approx.message a in
  Lgraph.set_edge m 1 0 ~label:1;
  check "internal state unaffected" false
    (Lgraph.mem_edge (Approx.graph_view a) 1 0)

let test_combined_ablations_still_sound_edges () =
  (* Even with purge AND prune disabled, Lemma 6 soundness holds: the
     approximation never invents an edge (it only retains stale ones). *)
  let adv = Build.figure1 () in
  ignore
    (drive ~enable_purge:false ~enable_prune:false adv ~rounds:12
       ~observe:(fun ~round:_ states skels ->
         Array.iter
           (fun s ->
             Lgraph.iter_edges (Approx.graph_view s) (fun q' q lbl ->
                 check "edge was timely at its label round" true
                   (Digraph.mem_edge skels.(lbl - 1) q' q)))
           states))

let test_purge_disabled_violates_obs1 () =
  (* Failure injection: without Line 24 the Observation 1 bound fails in
     runs whose early edges die. *)
  let adv = Build.figure1 () in
  let n = 6 in
  let stale_found = ref false in
  ignore
    (drive ~enable_purge:false adv ~rounds:(3 * n)
       ~observe:(fun ~round states _ ->
         Array.iter
           (fun s ->
             Lgraph.iter_edges (Approx.graph_view s) (fun _ _ l ->
                 if l <= round - n then stale_found := true))
           states));
  check "stale labels appear" true !stale_found

let tests =
  [
    Alcotest.test_case "Observation 1" `Quick test_observation1;
    Alcotest.test_case "Lemma 3 (PT and fresh labels)" `Quick test_lemma3;
    Alcotest.test_case "Lemma 4 (path propagation)" `Quick
      test_lemma4_path_propagation;
    Alcotest.test_case "Lemma 5 (overapproximation)" `Quick test_lemma5;
    Alcotest.test_case "Lemma 6 (soundness of edges)" `Quick test_lemma6;
    Alcotest.test_case "Lemma 7 (containment when SC)" `Quick test_lemma7;
    Alcotest.test_case "Theorem 8 (component closure)" `Quick test_theorem8;
    Alcotest.test_case "root members reach SC (Lemma 11)" `Quick
      test_root_members_become_strongly_connected;
    Alcotest.test_case "misuse rejected" `Quick test_approx_misuse;
    Alcotest.test_case "message is a copy" `Quick test_message_is_copy;
    Alcotest.test_case "no purge -> Obs1 violated" `Quick
      test_purge_disabled_violates_obs1;
    Alcotest.test_case "ablated variants never invent edges" `Quick
      test_combined_ablations_still_sound_edges;
  ]
