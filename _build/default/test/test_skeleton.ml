(* Tests for skeletons (G^∩r), timely neighbourhoods and structural
   analysis. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_skeleton

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_start_is_complete () =
  let s = Skeleton.start ~n:4 in
  check "complete with loops" true
    (Digraph.equal (Skeleton.current s) (Digraph.complete ~self_loops:true 4));
  check_int "no rounds" 0 (Skeleton.rounds_absorbed s)

let test_absorb_intersects () =
  let s = Skeleton.start ~n:3 in
  let g1 = Digraph.of_edges 3 [ (0, 1); (1, 2); (0, 0); (1, 1); (2, 2) ] in
  let g2 = Digraph.of_edges 3 [ (0, 1); (2, 0); (0, 0); (1, 1); (2, 2) ] in
  check_int "round 1" 1 (Skeleton.absorb s g1);
  check "after one round = g1" true (Digraph.equal (Skeleton.current s) g1);
  check_int "round 2" 2 (Skeleton.absorb s g2);
  check "after two = inter" true
    (Digraph.equal (Skeleton.current s) (Digraph.inter g1 g2))

let test_view_is_live () =
  let s = Skeleton.start ~n:2 in
  let v = Skeleton.view s in
  ignore (Skeleton.absorb s (Gen.self_loops_only 2));
  check "view reflects absorb" true (Digraph.equal v (Gen.self_loops_only 2))

let random_trace seed ~n ~rounds ~p =
  let rng = Rng.of_int seed in
  Trace.record ~n ~rounds (fun _ -> Gen.gnp rng n p)

let test_at_matches_incremental () =
  let t = random_trace 1 ~n:6 ~rounds:8 ~p:0.5 in
  let all = Skeleton.all t in
  let s = Skeleton.start ~n:6 in
  for r = 1 to 8 do
    ignore (Skeleton.absorb s (Trace.graph t r));
    check "at = incremental" true (Digraph.equal all.(r - 1) (Skeleton.at t r));
    check "current = at" true (Digraph.equal (Skeleton.current s) (Skeleton.at t r))
  done

let test_antitone_property_eq1 () =
  (* ∀r: G^∩r ⊇ G^∩(r+1) — the subgraph chain (1). *)
  for seed = 0 to 9 do
    let t = random_trace seed ~n:7 ~rounds:10 ~p:0.4 in
    let all = Skeleton.all t in
    for r = 0 to 8 do
      check "antitone" true (Digraph.subgraph_of all.(r + 1) all.(r))
    done
  done

let test_stabilization_round () =
  (* Constant graphs stabilize immediately. *)
  let g = Gen.self_loops_only 4 in
  let t = Trace.record ~n:4 ~rounds:6 (fun _ -> Digraph.copy g) in
  check_int "constant stabilizes at 1" 1 (Skeleton.stabilization_round t);
  (* A graph that loses an edge at round 4 stabilizes there. *)
  let big = Digraph.copy g in
  Digraph.add_edge big 0 1;
  let t =
    Trace.record ~n:4 ~rounds:8 (fun r ->
        if r < 4 then Digraph.copy big else Digraph.copy g)
  in
  check_int "stabilizes at 4" 4 (Skeleton.stabilization_round t)

let test_final () =
  let t = random_trace 3 ~n:5 ~rounds:7 ~p:0.6 in
  check "final = at last" true
    (Digraph.equal (Skeleton.final t) (Skeleton.at t 7))

(* Timely neighbourhoods *)

let test_pt_is_skeleton_preds () =
  let t = random_trace 4 ~n:6 ~rounds:6 ~p:0.5 in
  for r = 1 to 6 do
    let skel = Skeleton.at t r in
    for p = 0 to 5 do
      check "pt = preds" true
        (Bitset.equal (Timely.at t ~p ~r) (Digraph.preds skel p))
    done
  done

let test_pt_antitone_eq3 () =
  (* PT(p, r) ⊇ PT(p, r+1) — property (3). *)
  let t = random_trace 5 ~n:6 ~rounds:8 ~p:0.4 in
  for p = 0 to 5 do
    for r = 1 to 7 do
      check "pt antitone" true
        (Bitset.subset (Timely.at t ~p ~r:(r + 1)) (Timely.at t ~p ~r))
    done
  done

let test_pt_matches_ho_intersection_eq7 () =
  (* PT(p, r) = ∩ HO(p, r') over r' <= r — the executable form of (7). *)
  let t = random_trace 6 ~n:6 ~rounds:6 ~p:0.5 in
  for p = 0 to 5 do
    for r = 1 to 6 do
      let hos = List.init r (fun i -> Ho.ho (Trace.graph t (i + 1)) p) in
      check "pt = ∩ HO" true
        (Bitset.equal (Timely.at t ~p ~r) (Ho.pt_of_hos 6 hos))
    done
  done

let test_all_final () =
  let t = random_trace 7 ~n:5 ~rounds:5 ~p:0.5 in
  let pts = Timely.all_final t in
  for p = 0 to 4 do
    check "all_final agrees" true (Bitset.equal pts.(p) (Timely.final t p))
  done

(* Analysis *)

let two_islands =
  (* root {0,1}, root {2,3}, and 4 below both *)
  Digraph.of_edges 5
    [ (0, 1); (1, 0); (2, 3); (3, 2); (1, 4); (3, 4); (0, 0); (1, 1); (2, 2); (3, 3); (4, 4) ]

let test_analysis_roots () =
  let a = Analysis.analyze two_islands in
  check_int "3 components" 3 (Scc.compute two_islands).Scc.count;
  check_int "2 roots" 2 (Analysis.root_count a);
  check "not single" false (Analysis.single_root a);
  check "0 is root" true (Analysis.is_root a 0);
  check "4 not root" false (Analysis.is_root a 4)

let test_analysis_component_of () =
  let a = Analysis.analyze two_islands in
  Alcotest.(check (list int)) "comp of 1" [ 0; 1 ]
    (Bitset.elements (Analysis.component_of a 1));
  Alcotest.(check (list int)) "comp of 4" [ 4 ]
    (Bitset.elements (Analysis.component_of a 4))

let test_root_reaching () =
  let a = Analysis.analyze two_islands in
  let r = Analysis.root_reaching a 4 in
  check "is a root" true
    (List.exists (Bitset.equal r) (Analysis.roots a));
  (* a root member's own component is returned *)
  check "root of root member" true
    (Bitset.equal (Analysis.root_reaching a 0) (Analysis.component_of a 0))

let test_single_root () =
  let g = Gen.star 5 ~center:3 in
  let a = Analysis.analyze g in
  check "single root" true (Analysis.single_root a);
  Alcotest.(check (list int)) "root is center" [ 3 ]
    (Bitset.elements (List.hd (Analysis.roots a)))

(* Property: every node is reachable from some root component (used by
   Lemma 11's propagation argument). *)

let prop_reachable_from_root =
  QCheck2.Test.make ~count:200 ~name:"every node reachable from a root"
    QCheck2.Gen.(
      let* n = int_range 1 9 in
      let+ seed = int_bound 10000 in
      (n, seed))
    (fun (n, seed) ->
      let g = Gen.gnp (Rng.of_int seed) n 0.3 in
      let a = Analysis.analyze g in
      List.for_all
        (fun p ->
          let root = Analysis.root_reaching a p in
          let from_root = Reach.reachable_from g (Bitset.choose root) in
          Bitset.mem from_root p)
        (List.init n Fun.id))

let tests =
  [
    Alcotest.test_case "start is complete" `Quick test_start_is_complete;
    Alcotest.test_case "absorb intersects" `Quick test_absorb_intersects;
    Alcotest.test_case "view is live" `Quick test_view_is_live;
    Alcotest.test_case "at matches incremental" `Quick test_at_matches_incremental;
    Alcotest.test_case "antitone chain (eq. 1)" `Quick test_antitone_property_eq1;
    Alcotest.test_case "stabilization round" `Quick test_stabilization_round;
    Alcotest.test_case "final" `Quick test_final;
    Alcotest.test_case "PT = skeleton preds" `Quick test_pt_is_skeleton_preds;
    Alcotest.test_case "PT antitone (eq. 3)" `Quick test_pt_antitone_eq3;
    Alcotest.test_case "PT = ∩HO (eq. 7)" `Quick test_pt_matches_ho_intersection_eq7;
    Alcotest.test_case "all_final" `Quick test_all_final;
    Alcotest.test_case "analysis roots" `Quick test_analysis_roots;
    Alcotest.test_case "analysis component_of" `Quick test_analysis_component_of;
    Alcotest.test_case "root_reaching" `Quick test_root_reaching;
    Alcotest.test_case "single root" `Quick test_single_root;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_reachable_from_root ]
