(* Tests for Scc and Reach, cross-checked against a naive O(n³) oracle. *)

open Ssg_util
open Ssg_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Naive transitive closure by Floyd-Warshall on booleans; reflexive. *)
let closure g =
  let n = Digraph.order g in
  let r = Array.make_matrix n n false in
  Digraph.iter_edges g (fun p q -> r.(p).(q) <- true);
  for v = 0 to n - 1 do
    r.(v).(v) <- true
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if r.(i).(k) && r.(k).(j) then r.(i).(j) <- true
      done
    done
  done;
  r

let naive_same_scc r p q = r.(p).(q) && r.(q).(p)

(* --- Reach --- *)

let diamond = Digraph.of_edges 5 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ]

let test_reachable_from () =
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2; 3; 4 ]
    (Bitset.elements (Reach.reachable_from diamond 0));
  Alcotest.(check (list int)) "from 3" [ 3; 4 ]
    (Bitset.elements (Reach.reachable_from diamond 3))

let test_reaches () =
  Alcotest.(check (list int)) "reaches 3" [ 0; 1; 2; 3 ]
    (Bitset.elements (Reach.reaches diamond 3));
  Alcotest.(check (list int)) "reaches 0" [ 0 ]
    (Bitset.elements (Reach.reaches diamond 0))

let test_distances () =
  let d = Reach.distances_from diamond 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 1; 2; 3 |] d;
  check "unreachable" true ((Reach.distances_from diamond 4).(0) = -1)

let test_distance_and_path () =
  Alcotest.(check (option int)) "0->4" (Some 3) (Reach.distance diamond 0 4);
  Alcotest.(check (option int)) "4->0" None (Reach.distance diamond 4 0);
  Alcotest.(check (option int)) "self" (Some 0) (Reach.distance diamond 2 2);
  (match Reach.shortest_path diamond 0 4 with
  | Some path ->
      check_int "path length" 4 (List.length path);
      check "starts at 0" true (List.hd path = 0);
      check "ends at 4" true (List.nth path 3 = 4);
      (* consecutive nodes are edges *)
      let rec ok = function
        | a :: (b :: _ as rest) -> Digraph.mem_edge diamond a b && ok rest
        | _ -> true
      in
      check "valid edges" true (ok path)
  | None -> Alcotest.fail "expected a path");
  check "self path" true (Reach.shortest_path diamond 1 1 = Some [ 1 ]);
  check "no path" true (Reach.shortest_path diamond 4 0 = None)

let test_reach_restricted () =
  (* Excluding node 1 and 2 disconnects 0 from 3. *)
  let scope = Bitset.of_list 5 [ 0; 3; 4 ] in
  Alcotest.(check (list int)) "restricted" [ 0 ]
    (Bitset.elements (Reach.reachable_from ~nodes:scope diamond 0));
  (* Start outside the scope: empty. *)
  let scope2 = Bitset.of_list 5 [ 3; 4 ] in
  check "start outside scope" true
    (Bitset.is_empty (Reach.reachable_from ~nodes:scope2 diamond 0))

(* --- Scc --- *)

let two_cycles =
  (* {0,1} and {2,3,4} cycles, bridge 1 -> 2 *)
  Digraph.of_edges 5 [ (0, 1); (1, 0); (2, 3); (3, 4); (4, 2); (1, 2) ]

let test_scc_basic () =
  let part = Scc.compute two_cycles in
  check_int "count" 2 part.Scc.count;
  check "0 ~ 1" true (Scc.same_component part 0 1);
  check "2 ~ 4" true (Scc.same_component part 2 4);
  check "0 !~ 2" false (Scc.same_component part 0 2)

let test_scc_reverse_topological () =
  (* Edge between components goes from higher to lower index. *)
  let part = Scc.compute two_cycles in
  check "1's comp later than 2's" true (part.Scc.comp.(1) > part.Scc.comp.(2))

let test_component_sets () =
  let part = Scc.compute two_cycles in
  let sets = Scc.component_sets two_cycles part in
  let sizes = Array.map Bitset.cardinal sets in
  Array.sort compare sizes;
  Alcotest.(check (array int)) "sizes" [| 2; 3 |] sizes

let test_component_containing () =
  Alcotest.(check (list int)) "C of 3" [ 2; 3; 4 ]
    (Bitset.elements (Scc.component_containing two_cycles 3));
  Alcotest.(check (list int)) "C of 0" [ 0; 1 ]
    (Bitset.elements (Scc.component_containing two_cycles 0))

let test_condensation () =
  let part = Scc.compute two_cycles in
  let dag = Scc.condensation two_cycles part in
  check_int "dag order" 2 (Digraph.order dag);
  check_int "dag edges" 1 (Digraph.edge_count dag);
  (* acyclic: no self loops and at most one direction *)
  check "edge direction" true
    (Digraph.mem_edge dag part.Scc.comp.(1) part.Scc.comp.(2))

let test_root_components () =
  let roots = Scc.root_components two_cycles in
  check_int "one root" 1 (List.length roots);
  Alcotest.(check (list int)) "root is {0,1}" [ 0; 1 ]
    (Bitset.elements (List.hd roots))

let test_root_components_all_isolated () =
  let g = Gen.self_loops_only 4 in
  check_int "four roots" 4 (List.length (Scc.root_components g))

let test_is_root_component () =
  check "root yes" true
    (Scc.is_root_component two_cycles (Bitset.of_list 5 [ 0; 1 ]));
  check "root no (incoming)" false
    (Scc.is_root_component two_cycles (Bitset.of_list 5 [ 2; 3; 4 ]));
  check "not scc" false
    (Scc.is_root_component two_cycles (Bitset.of_list 5 [ 0; 1; 2 ]))

let test_strongly_connected () =
  check "two cycles not SC" false (Scc.is_strongly_connected two_cycles);
  check "restricted SC" true
    (Scc.is_strongly_connected ~nodes:(Bitset.of_list 5 [ 2; 3; 4 ]) two_cycles);
  check "singleton SC" true
    (Scc.is_strongly_connected ~nodes:(Bitset.of_list 5 [ 0 ]) two_cycles);
  check "empty scope" false
    (Scc.is_strongly_connected ~nodes:(Bitset.create 5) two_cycles);
  check "cycle SC" true
    (Scc.is_strongly_connected (Digraph.of_edges 3 [ (0, 1); (1, 2); (2, 0) ]))

let test_scc_long_path_no_overflow () =
  (* 50k-node path: recursive Tarjan would blow the stack. *)
  let n = 50_000 in
  let g = Digraph.create n in
  for i = 0 to n - 2 do
    Digraph.add_edge g i (i + 1)
  done;
  let part = Scc.compute g in
  check_int "n components" n part.Scc.count

(* Property: Tarjan agrees with the naive closure oracle. *)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 1 10 in
    let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
    let+ es = list_size (int_bound 25) edge in
    Digraph.of_edges n es)

let props =
  [
    QCheck2.Test.make ~count:300 ~name:"tarjan matches closure oracle"
      gen_graph (fun g ->
        let n = Digraph.order g in
        let part = Scc.compute g in
        let r = closure g in
        let ok = ref true in
        for p = 0 to n - 1 do
          for q = 0 to n - 1 do
            if Scc.same_component part p q <> naive_same_scc r p q then
              ok := false
          done
        done;
        !ok);
    QCheck2.Test.make ~count:300 ~name:"condensation is acyclic" gen_graph
      (fun g ->
        let part = Scc.compute g in
        let dag = Scc.condensation g part in
        let dag_part = Scc.compute dag in
        dag_part.Scc.count = part.Scc.count);
    QCheck2.Test.make ~count:300 ~name:"at least one root component"
      gen_graph (fun g -> Scc.root_components g <> []);
    QCheck2.Test.make ~count:300
      ~name:"root components pass is_root_component" gen_graph (fun g ->
        List.for_all (Scc.is_root_component g) (Scc.root_components g));
    QCheck2.Test.make ~count:300
      ~name:"reachable_from matches closure oracle" gen_graph (fun g ->
        let n = Digraph.order g in
        let r = closure g in
        let ok = ref true in
        for p = 0 to n - 1 do
          let reach = Reach.reachable_from g p in
          for q = 0 to n - 1 do
            if Bitset.mem reach q <> r.(p).(q) then ok := false
          done
        done;
        !ok);
    QCheck2.Test.make ~count:300 ~name:"reaches is transpose reachability"
      gen_graph (fun g ->
        let n = Digraph.order g in
        let t = Digraph.transpose g in
        let ok = ref true in
        for p = 0 to n - 1 do
          if
            not
              (Bitset.equal (Reach.reaches g p) (Reach.reachable_from t p))
          then ok := false
        done;
        !ok);
    QCheck2.Test.make ~count:200 ~name:"shortest path length = distance"
      gen_graph (fun g ->
        let n = Digraph.order g in
        let ok = ref true in
        for p = 0 to n - 1 do
          for q = 0 to n - 1 do
            match (Reach.distance g p q, Reach.shortest_path g p q) with
            | None, None -> ()
            | Some d, Some path ->
                if List.length path <> d + 1 then ok := false;
                (* consecutive hops are edges; endpoints correct *)
                if List.hd path <> p then ok := false;
                if List.nth path d <> q then ok := false;
                let rec hops = function
                  | a :: (b :: _ as rest) ->
                      Digraph.mem_edge g a b && hops rest
                  | _ -> true
                in
                if not (hops path) then ok := false
            | _ -> ok := false
          done
        done;
        !ok);
    QCheck2.Test.make ~count:200
      ~name:"paths never exceed n-1 hops (paper's bound)" gen_graph (fun g ->
        let n = Digraph.order g in
        let ok = ref true in
        for p = 0 to n - 1 do
          for q = 0 to n - 1 do
            match Reach.distance g p q with
            | Some d when d > n - 1 -> ok := false
            | _ -> ()
          done
        done;
        !ok);
    QCheck2.Test.make ~count:200
      ~name:"component_containing agrees with partition" gen_graph (fun g ->
        let n = Digraph.order g in
        let part = Scc.compute g in
        let sets = Scc.component_sets g part in
        let ok = ref true in
        for p = 0 to n - 1 do
          if
            not
              (Bitset.equal
                 (Scc.component_containing g p)
                 sets.(part.Scc.comp.(p)))
          then ok := false
        done;
        !ok);
  ]

let tests =
  [
    Alcotest.test_case "reachable_from" `Quick test_reachable_from;
    Alcotest.test_case "reaches" `Quick test_reaches;
    Alcotest.test_case "distances" `Quick test_distances;
    Alcotest.test_case "distance and shortest path" `Quick test_distance_and_path;
    Alcotest.test_case "restricted reach" `Quick test_reach_restricted;
    Alcotest.test_case "scc basic" `Quick test_scc_basic;
    Alcotest.test_case "scc reverse topological ids" `Quick
      test_scc_reverse_topological;
    Alcotest.test_case "component sets" `Quick test_component_sets;
    Alcotest.test_case "component containing" `Quick test_component_containing;
    Alcotest.test_case "condensation" `Quick test_condensation;
    Alcotest.test_case "root components" `Quick test_root_components;
    Alcotest.test_case "roots of isolated graph" `Quick
      test_root_components_all_isolated;
    Alcotest.test_case "is_root_component" `Quick test_is_root_component;
    Alcotest.test_case "strong connectivity" `Quick test_strongly_connected;
    Alcotest.test_case "tarjan iterative (long path)" `Slow
      test_scc_long_path_no_overflow;
  ]
  @ List.map QCheck_alcotest.to_alcotest props
