(* Smoke tests for the experiment registry: every experiment runs at quick
   scale, produces a non-empty table, and is findable by id. *)

open Ssg_util
open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_registry () =
  let ids = List.map (fun e -> e.Experiment.id) Experiment.all in
  Alcotest.(check (list string)) "ids in presentation order"
    [ "F1"; "F2"; "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10";
      "E11"; "E12"; "A1" ]
    ids;
  check "find case-insensitive" true (Experiment.find "e9" <> None);
  check "find unknown" true (Experiment.find "Z9" = None)

let rendered_rows table =
  (* headers + rule + at least one data row *)
  List.length (String.split_on_char '\n' (Table.render table))

let test_each_experiment_runs () =
  List.iter
    (fun e ->
      let r = e.Experiment.run `Quick in
      check (e.Experiment.id ^ " id matches") true (r.Experiment.id = e.Experiment.id);
      check (e.Experiment.id ^ " has rows") true (rendered_rows r.Experiment.table > 3);
      check (e.Experiment.id ^ " has notes") true (r.Experiment.notes <> []))
    Experiment.all

let test_run_and_render () =
  match Experiment.find "E2" with
  | None -> Alcotest.fail "E2 missing"
  | Some e ->
      let s = Experiment.run_and_render e `Quick in
      check "mentions id" true (String.length s > 0 && String.sub s 0 5 = "== E2");
      check "mentions artifact" true
        (let needle = "Theorem 2" in
         let nl = String.length needle in
         let rec go i =
           i + nl <= String.length s && (String.sub s i nl = needle || go (i + 1))
         in
         go 0)

let test_determinism () =
  (* Same experiment, same scale -> identical rendering (fixed seeds). *)
  match Experiment.find "E1" with
  | None -> Alcotest.fail "E1 missing"
  | Some e ->
      let a = Experiment.run_and_render e `Quick in
      let b = Experiment.run_and_render e `Quick in
      Alcotest.(check string) "deterministic" a b

let test_figure1_experiment_content () =
  match Experiment.find "F1" with
  | None -> Alcotest.fail "F1 missing"
  | Some e ->
      let r = e.Experiment.run `Quick in
      (* 6 rounds of p6's approximation *)
      check_int "six data rows" 8 (rendered_rows r.Experiment.table - 1)

let tests =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "every experiment runs (quick)" `Slow
      test_each_experiment_runs;
    Alcotest.test_case "run_and_render" `Quick test_run_and_render;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "figure1 content" `Quick test_figure1_experiment_content;
  ]
