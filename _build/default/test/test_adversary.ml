(* Tests for run descriptions and the generator zoo. *)

open Ssg_util
open Ssg_graph
open Ssg_skeleton
open Ssg_adversary

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_make_validation () =
  let no_loop = Digraph.create 3 in
  check "missing self-loop rejected" true
    (try
       ignore (Adversary.make ~name:"bad" ~prefix:[||] ~stable:no_loop);
       false
     with Invalid_argument _ -> true);
  let ok = Gen.self_loops_only 3 in
  check "order mismatch rejected" true
    (try
       ignore
         (Adversary.make ~name:"bad" ~prefix:[| Gen.self_loops_only 4 |] ~stable:ok);
       false
     with Invalid_argument _ -> true)

let test_graph_schedule () =
  let a = Gen.self_loops_only 3 in
  let b = Gen.star 3 ~center:0 in
  let adv = Adversary.make ~name:"t" ~prefix:[| b |] ~stable:a in
  check "round 1 = prefix" true (Digraph.equal (Adversary.graph adv 1) b);
  check "round 2 = stable" true (Digraph.equal (Adversary.graph adv 2) a);
  check "round 99 = stable" true (Digraph.equal (Adversary.graph adv 99) a);
  check_int "prefix length" 1 (Adversary.prefix_length adv);
  check "round 0 rejected" true
    (try ignore (Adversary.graph adv 0); false with Invalid_argument _ -> true)

let test_stable_skeleton_formula () =
  (* skeleton = (∩ prefix) ∩ stable, cross-checked against a materialized
     trace. *)
  let rng = Rng.of_int 1 in
  for _ = 1 to 10 do
    let adv = Build.block_sources rng ~n:8 ~k:3 ~prefix_len:4 ~noise:0.5 () in
    let skel = Adversary.stable_skeleton adv in
    let t = Adversary.trace adv ~rounds:10 in
    check "skeleton matches trace" true (Digraph.equal skel (Skeleton.final t))
  done

let test_defensive_copies () =
  let stable = Gen.self_loops_only 2 in
  let adv = Adversary.make ~name:"t" ~prefix:[||] ~stable in
  Digraph.add_edge stable 0 1;
  check "make copied stable" false
    (Digraph.mem_edge (Adversary.graph adv 1) 0 1);
  let g = Adversary.graph adv 1 in
  Digraph.add_edge g 0 1;
  check "graph returns copy" false
    (Digraph.mem_edge (Adversary.graph adv 1) 0 1)

let test_synchronous () =
  let adv = Build.synchronous ~n:5 in
  check_int "min_k 1" 1 (Adversary.min_k adv);
  check "psrcs 1" true (Adversary.psrcs adv ~k:1);
  let a = Analysis.analyze (Adversary.stable_skeleton adv) in
  check_int "one root" 1 (Analysis.root_count a);
  check_int "root is everyone" 5 (Bitset.cardinal (List.hd (Analysis.roots a)))

let test_lower_bound_properties () =
  List.iter
    (fun (n, k) ->
      let adv = Build.lower_bound ~n ~k in
      check "psrcs k" true (Adversary.psrcs adv ~k);
      if k > 1 then
        check "psrcs k-1 fails" false (Adversary.psrcs adv ~k:(k - 1));
      check_int "min_k exactly k" k (Adversary.min_k adv);
      let a = Analysis.analyze (Adversary.stable_skeleton adv) in
      check_int "k roots" k (Analysis.root_count a))
    [ (4, 2); (8, 3); (8, 1); (10, 9); (16, 5) ]

let test_lower_bound_validation () =
  check "k >= n rejected" true
    (try ignore (Build.lower_bound ~n:4 ~k:4); false
     with Invalid_argument _ -> true);
  check "k = 0 rejected" true
    (try ignore (Build.lower_bound ~n:4 ~k:0); false
     with Invalid_argument _ -> true)

let test_figure1 () =
  let adv = Build.figure1 () in
  check_int "n = 6" 6 (Adversary.n adv);
  check "psrcs 3 (paper)" true (Adversary.psrcs adv ~k:3);
  check "psrcs 2 fails (tight)" false (Adversary.psrcs adv ~k:2);
  check_int "min_k exactly 3" 3 (Adversary.min_k adv);
  let a = Analysis.analyze (Adversary.stable_skeleton adv) in
  check_int "2 roots" 2 (Analysis.root_count a);
  let roots = List.map Bitset.elements (Analysis.roots a) in
  check "roots {p1,p2} and {p3,p4,p5}" true
    (List.mem [ 0; 1 ] roots && List.mem [ 2; 3; 4 ] roots);
  (* G^∩2 is a strict supergraph of G^∩∞ (the 1a vs 1b distinction) *)
  let t = Adversary.trace adv ~rounds:6 in
  let g2 = Skeleton.at t 2 and ginf = Adversary.stable_skeleton adv in
  check "skeleton shrinks after round 2" true
    (Digraph.subgraph_of ginf g2 && not (Digraph.equal ginf g2))

let test_block_sources_guarantee () =
  let rng = Rng.of_int 2 in
  for _ = 1 to 30 do
    let n = 4 + Rng.int rng 12 in
    let k = 1 + Rng.int rng (min 6 (n - 1)) in
    let adv =
      Build.block_sources rng ~n ~k ~prefix_len:(Rng.int rng 4)
        ~cross:(if Rng.bool rng then 0.1 else 0.0)
        ()
    in
    check "psrcs holds by construction" true (Adversary.psrcs adv ~k)
  done

let test_block_sources_blocks_cap () =
  check "blocks > k rejected" true
    (try
       ignore (Build.block_sources (Rng.of_int 3) ~n:6 ~k:2 ~blocks:3 ());
       false
     with Invalid_argument _ -> true)

let test_partitioned_roots () =
  let rng = Rng.of_int 4 in
  for _ = 1 to 15 do
    let blocks = 1 + Rng.int rng 4 in
    let n = blocks + 3 + Rng.int rng 8 in
    let adv = Build.partitioned rng ~n ~blocks () in
    let a = Analysis.analyze (Adversary.stable_skeleton adv) in
    check_int "roots = blocks" blocks (Analysis.root_count a);
    check "min_k >= blocks" true (Adversary.min_k adv >= blocks)
  done

let test_single_root_unique () =
  let rng = Rng.of_int 5 in
  for _ = 1 to 25 do
    let n = 2 + Rng.int rng 14 in
    let adv = Build.single_root rng ~n ~extra:0.15 () in
    let a = Analysis.analyze (Adversary.stable_skeleton adv) in
    check_int "single root" 1 (Analysis.root_count a)
  done

let test_isolated_prefix_collapses_skeleton () =
  let rng = Rng.of_int 6 in
  let base = Build.block_sources rng ~n:6 ~k:2 () in
  let adv = Build.isolated_prefix base ~rounds:1 in
  let skel = Adversary.stable_skeleton adv in
  check "skeleton is self-loops only" true
    (Digraph.equal skel (Gen.self_loops_only 6));
  check_int "min_k collapses to n" 6 (Adversary.min_k adv);
  (* zero rounds is the identity *)
  let same = Build.isolated_prefix base ~rounds:0 in
  check "identity" true
    (Digraph.equal (Adversary.stable_skeleton same) (Adversary.stable_skeleton base))

let test_crash_synchronous () =
  let rng = Rng.of_int 7 in
  let adv = Build.crash_synchronous rng ~n:6 ~crashes:[ (2, 1); (4, 3) ] in
  (* After round 3, crashed processes have no outgoing edges but self. *)
  let late = Adversary.graph adv 4 in
  check "2 silent" true (Digraph.out_degree late 2 = 1 && Digraph.mem_edge late 2 2);
  check "4 silent" true (Digraph.out_degree late 4 = 1);
  check "alive broadcasts" true (Digraph.out_degree late 0 = 6);
  (* Crashed processes still receive from every non-crashed process (and
     themselves): only the other crashed process's edge is missing. *)
  check_int "2 still hears alive" 5 (Digraph.in_degree late 2);
  (* In the crash round, delivery is a subset that includes the self loop. *)
  let crash_round = Adversary.graph adv 1 in
  check "self loop kept in crash round" true (Digraph.mem_edge crash_round 2 2);
  check "not yet crashed at round 1" true (Digraph.out_degree crash_round 4 = 6);
  (* duplicate crash rejected *)
  check "duplicate rejected" true
    (try
       ignore (Build.crash_synchronous rng ~n:4 ~crashes:[ (1, 1); (1, 2) ]);
       false
     with Invalid_argument _ -> true)

let test_crash_sync_min_k_is_1 () =
  (* Crashed processes keep hearing a never-crashed process, so every pair
     of processes shares a source: consensus territory. *)
  let rng = Rng.of_int 8 in
  let adv = Build.crash_synchronous rng ~n:5 ~crashes:[ (0, 1) ] in
  check_int "min_k" 1 (Adversary.min_k adv)

let test_arbitrary_skeleton_consistency () =
  let rng = Rng.of_int 9 in
  for _ = 1 to 10 do
    let adv = Build.arbitrary rng ~n:7 ~density:0.3 ~prefix_len:3 ~noise:0.4 () in
    let t = Adversary.trace adv ~rounds:8 in
    check "description = trace skeleton" true
      (Digraph.equal (Adversary.stable_skeleton adv) (Skeleton.final t))
  done

let test_recurrent_noise () =
  let rng = Rng.of_int 10 in
  let base = Build.partitioned rng ~n:8 ~blocks:2 () in
  let adv = Build.with_recurrent_noise rng base ~noise:0.3 in
  (* Deterministic: same round, same graph. *)
  check "deterministic" true
    (Digraph.equal (Adversary.graph adv 6) (Adversary.graph adv 6));
  (* Odd rounds beyond the prefix are exactly the stable graph. *)
  let stable = Adversary.stable_skeleton base in
  check "odd rounds clean" true (Digraph.equal (Adversary.graph adv 7) stable);
  check "even rounds supergraph" true
    (Digraph.subgraph_of stable (Adversary.graph adv 8));
  (* Skeleton unchanged by the noise. *)
  check "skeleton preserved" true
    (Digraph.equal (Adversary.stable_skeleton adv) stable);
  check_int "min_k preserved" (Adversary.min_k base) (Adversary.min_k adv);
  (* The description skeleton matches a long materialized trace. *)
  let t = Adversary.trace adv ~rounds:30 in
  check "trace agrees" true
    (Digraph.equal (Skeleton.final t) stable)

let test_delayed_stability () =
  let rng = Rng.of_int 21 in
  List.iter
    (fun rst ->
      let adv = Build.delayed_stability rng ~n:8 ~k:2 ~rst in
      check "psrcs 2" true (Adversary.psrcs adv ~k:2);
      let t = Adversary.trace adv ~rounds:(rst + 8) in
      check_int
        (Printf.sprintf "stabilizes exactly at %d" rst)
        rst
        (Ssg_skeleton.Skeleton.stabilization_round t))
    [ 1; 2; 5; 12 ];
  check "rst 0 rejected" true
    (try ignore (Build.delayed_stability rng ~n:4 ~k:1 ~rst:0); false
     with Invalid_argument _ -> true)

let test_decision_horizon_positive () =
  let adv = Build.synchronous ~n:4 in
  check "horizon > 2n" true (Adversary.decision_horizon adv > 8)

let tests =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "graph schedule" `Quick test_graph_schedule;
    Alcotest.test_case "stable skeleton formula" `Quick test_stable_skeleton_formula;
    Alcotest.test_case "defensive copies" `Quick test_defensive_copies;
    Alcotest.test_case "synchronous" `Quick test_synchronous;
    Alcotest.test_case "lower bound properties" `Quick test_lower_bound_properties;
    Alcotest.test_case "lower bound validation" `Quick test_lower_bound_validation;
    Alcotest.test_case "figure1 structure" `Quick test_figure1;
    Alcotest.test_case "block sources guarantee" `Quick test_block_sources_guarantee;
    Alcotest.test_case "block sources blocks cap" `Quick test_block_sources_blocks_cap;
    Alcotest.test_case "partitioned roots" `Quick test_partitioned_roots;
    Alcotest.test_case "single root unique" `Quick test_single_root_unique;
    Alcotest.test_case "isolated prefix collapses skeleton" `Quick
      test_isolated_prefix_collapses_skeleton;
    Alcotest.test_case "crash synchronous" `Quick test_crash_synchronous;
    Alcotest.test_case "crash sync min_k" `Quick test_crash_sync_min_k_is_1;
    Alcotest.test_case "arbitrary skeleton consistency" `Quick
      test_arbitrary_skeleton_consistency;
    Alcotest.test_case "recurrent noise" `Quick test_recurrent_noise;
    Alcotest.test_case "delayed stability" `Quick test_delayed_stability;
    Alcotest.test_case "decision horizon" `Quick test_decision_horizon_positive;
  ]
