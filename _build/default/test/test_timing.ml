(* Tests for the timing substrate: event engine, latency models, and the
   round synchronizer that induces communication graphs from delays. *)

open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_timing

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Event_sim --- *)

let test_event_order () =
  let sim = Event_sim.create () in
  let log = ref [] in
  Event_sim.schedule sim ~at:2.0 (fun () -> log := 2 :: !log);
  Event_sim.schedule sim ~at:1.0 (fun () -> log := 1 :: !log);
  Event_sim.schedule sim ~at:3.0 (fun () -> log := 3 :: !log);
  ignore (Event_sim.run sim);
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_event_fifo_at_same_time () =
  let sim = Event_sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Event_sim.schedule sim ~at:1.0 (fun () -> log := i :: !log)
  done;
  ignore (Event_sim.run sim);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_event_cascade () =
  let sim = Event_sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 10 then Event_sim.schedule sim ~at:(Event_sim.now sim +. 1.0) tick
  in
  Event_sim.schedule sim ~at:0.0 tick;
  let final = Event_sim.run sim in
  check_int "ten ticks" 10 !count;
  Alcotest.(check (float 1e-9)) "final time" 9.0 final

let test_event_run_until () =
  let sim = Event_sim.create () in
  let fired = ref 0 in
  List.iter
    (fun t -> Event_sim.schedule sim ~at:t (fun () -> incr fired))
    [ 1.0; 2.0; 3.0; 4.0 ];
  ignore (Event_sim.run_until sim ~limit:2.5);
  check_int "two fired" 2 !fired;
  check_int "two pending" 2 (Event_sim.pending sim)

let test_event_past_rejected () =
  let sim = Event_sim.create () in
  Event_sim.schedule sim ~at:5.0 (fun () ->
      check "past rejected" true
        (try
           Event_sim.schedule sim ~at:1.0 ignore;
           false
         with Invalid_argument _ -> true));
  ignore (Event_sim.run sim)

(* --- Latency --- *)

let test_latency_models () =
  let c = Latency.constant 0.5 in
  check "constant" true (c ~src:0 ~dst:1 ~round:3 = Some 0.5);
  let u = Latency.uniform ~seed:1 ~lo:0.2 ~hi:0.8 in
  (match u ~src:0 ~dst:1 ~round:1 with
  | Some d -> check "uniform in range" true (d >= 0.2 && d < 0.8)
  | None -> Alcotest.fail "uniform lost a message");
  check "uniform deterministic" true
    (u ~src:0 ~dst:1 ~round:1 = u ~src:0 ~dst:1 ~round:1);
  check "uniform varies by round" true
    (u ~src:0 ~dst:1 ~round:1 <> u ~src:0 ~dst:1 ~round:2)

let test_latency_loss () =
  let never = Latency.with_loss ~seed:3 ~p:1.0 (Latency.constant 0.1) in
  check "always lost" true (never ~src:0 ~dst:1 ~round:1 = None);
  let always = Latency.with_loss ~seed:3 ~p:0.0 (Latency.constant 0.1) in
  check "never lost" true (always ~src:0 ~dst:1 ~round:1 = Some 0.1)

let test_latency_clustered_overlay () =
  let m =
    Latency.clustered ~assign:[| 0; 0; 1 |] ~intra:(Latency.constant 0.1)
      ~inter:(Latency.constant 9.0)
  in
  check "intra" true (m ~src:0 ~dst:1 ~round:1 = Some 0.1);
  check "inter" true (m ~src:0 ~dst:2 ~round:1 = Some 9.0);
  let o =
    Latency.overlay
      ~special:(fun ~src ~dst ~round:_ ->
        if src = 0 && dst = 2 then Some None else None)
      m
  in
  check "override kills 0->2" true (o ~src:0 ~dst:2 ~round:1 = None);
  check "others defer" true (o ~src:0 ~dst:1 ~round:1 = Some 0.1)

(* --- Round_sync --- *)

let test_fast_links_synchronous () =
  (* All links faster than the timeout: the induced run is the complete
     graph every round, and Algorithm 1 reaches consensus. *)
  let n = 5 in
  let r =
    Round_sync.run_kset
      ~inputs:(Array.init n (fun i -> i))
      ~latency:(Latency.constant 0.3) ~max_rounds:(2 * n) ()
  in
  let complete = Digraph.complete ~self_loops:true n in
  Trace.iter
    (fun _ g -> check "complete round graph" true (Digraph.equal g complete))
    r.Round_sync.trace;
  let values =
    Array.to_list r.Round_sync.decisions
    |> List.filter_map (Option.map (fun d -> d.Round_sync.value))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "consensus on min" [ 0 ] values;
  check "all decided" true (Array.for_all Option.is_some r.Round_sync.decisions);
  check_int "no late messages" 0 r.Round_sync.messages_late

let test_slow_links_partition () =
  (* Two clusters; cross-cluster latency exceeds the timeout, so the
     induced skeleton is two islands and the run decides 2 values. *)
  let n = 6 in
  let assign = [| 0; 0; 0; 1; 1; 1 |] in
  let latency =
    Latency.clustered ~assign ~intra:(Latency.constant 0.2)
      ~inter:(Latency.constant 5.0)
  in
  let r =
    Round_sync.run_kset
      ~inputs:(Array.init n (fun i -> i))
      ~latency ~max_rounds:(3 * n) ()
  in
  let skel = Skeleton.final r.Round_sync.trace in
  let analysis = Analysis.analyze skel in
  check_int "two islands" 2 (Analysis.root_count analysis);
  let values =
    Array.to_list r.Round_sync.decisions
    |> List.filter_map (Option.map (fun d -> d.Round_sync.value))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "one value per island" [ 0; 3 ] values;
  check "cross messages were late or lost" true (r.Round_sync.messages_late > 0)

let test_jittery_link_transient () =
  (* A link that is fast in early rounds and slow afterwards produces a
     transient skeleton edge: present in G^∩r early, gone from G^∩∞. *)
  let base = Latency.constant 0.2 in
  let latency =
    Latency.overlay
      ~special:(fun ~src ~dst ~round ->
        if src = 0 && dst = 2 then Some (if round <= 2 then Some 0.2 else Some 3.0)
        else None)
      base
  in
  let r =
    Round_sync.run_kset
      ~inputs:[| 0; 1; 2 |]
      ~latency ~max_rounds:8 ()
  in
  let t = r.Round_sync.trace in
  check "edge timely early" true (Digraph.mem_edge (Trace.graph t 1) 0 2);
  check "edge untimely late" false (Digraph.mem_edge (Trace.graph t 5) 0 2);
  check "edge not in skeleton" false
    (Digraph.mem_edge (Skeleton.final t) 0 2)

let test_drifting_timeouts () =
  (* One slow process (long timeout) still participates: the fast ones
     run ahead; its messages arrive "early" for their rounds and are
     buffered rather than lost; everyone decides. *)
  let n = 4 in
  let timeouts = [| 1.0; 1.0; 1.0; 3.0 |] in
  let r =
    Round_sync.run_kset ~timeouts
      ~inputs:(Array.init n (fun i -> i))
      ~latency:(Latency.constant 0.1) ~max_rounds:(3 * n) ()
  in
  check "all decided despite drift" true
    (Array.for_all Option.is_some r.Round_sync.decisions);
  (* The slow process always hears itself. *)
  Trace.iter
    (fun _ g -> check "self loop" true (Digraph.mem_edge g 3 3))
    r.Round_sync.trace

let test_determinism () =
  let mk () =
    Round_sync.run_kset
      ~inputs:[| 3; 1; 2 |]
      ~latency:(Latency.uniform ~seed:9 ~lo:0.1 ~hi:2.0)
      ~max_rounds:9 ()
  in
  let a = mk () and b = mk () in
  check "same decisions" true (a.Round_sync.decisions = b.Round_sync.decisions);
  for r = 1 to 9 do
    check "same graphs" true
      (Digraph.equal
         (Trace.graph a.Round_sync.trace r)
         (Trace.graph b.Round_sync.trace r))
  done

let test_message_accounting () =
  let n = 3 in
  let r =
    Round_sync.run_kset
      ~inputs:(Array.init n (fun i -> i))
      ~latency:(Latency.constant 0.1) ~max_rounds:4 ()
  in
  check_int "sent = n^2 * rounds" (n * n * 4) r.Round_sync.messages_sent;
  check_int "all delivered" (n * n * 4) r.Round_sync.messages_delivered

let test_config_validation () =
  check "bad timeout" true
    (try
       ignore
         (Round_sync.run_kset ~timeouts:[| 0.0; 1.0 |] ~inputs:[| 1; 2 |]
            ~latency:(Latency.constant 0.1) ~max_rounds:2 ());
       false
     with Invalid_argument _ -> true);
  check "zero rounds" true
    (try
       ignore
         (Round_sync.run_kset ~inputs:[| 1 |]
            ~latency:(Latency.constant 0.1) ~max_rounds:0 ());
       false
     with Invalid_argument _ -> true)

let test_gst_partial_synchrony () =
  (* The classic DLS shape: before GST messages can be arbitrarily late;
     after GST every link is bounded below the timeout.  The induced run
     has an isolation prefix followed by synchrony, and Algorithm 1
     decides shortly after GST. *)
  let n = 5 in
  let tau = 1.0 in
  let gst_round = 6 in
  let latency =
    Latency.overlay
      ~special:(fun ~src:_ ~dst:_ ~round ->
        if round < gst_round then Some (Some 50.0) (* way past any timeout *)
        else None)
      (Latency.constant 0.4)
  in
  let r =
    Round_sync.run_kset
      ~timeouts:(Array.make n tau)
      ~inputs:(Array.init n (fun i -> i))
      ~latency
      ~max_rounds:(gst_round + (2 * n) + 2)
      ()
  in
  (* before GST nobody hears anyone but themselves *)
  let early = Trace.graph r.Round_sync.trace 2 in
  check "isolated before GST" true
    (Digraph.equal early (Gen.self_loops_only n));
  (* after GST rounds are complete *)
  let late = Trace.graph r.Round_sync.trace (gst_round + 2) in
  check "synchronous after GST" true
    (Digraph.equal late (Digraph.complete ~self_loops:true n));
  (* everyone decides; the pre-GST isolation already forced PT = self, so
     every process is its own root: n values, each its own (the ♦Psrcs
     argument, emerging from timing) *)
  check "all decided" true
    (Array.for_all Option.is_some r.Round_sync.decisions);
  let values =
    Array.to_list r.Round_sync.decisions
    |> List.filter_map (Option.map (fun d -> d.Round_sync.value))
    |> List.sort_uniq compare
  in
  check "own values (eventual synchrony is too weak)" true
    (List.length values = n)

(* --- properties --- *)

let gen_cfg =
  QCheck2.Gen.(
    let* seed = int_bound 100000 in
    let* n = int_range 2 7 in
    let+ tau = int_range 1 30 in
    (seed, n, float_of_int tau /. 10.0))

let props =
  [
    QCheck2.Test.make ~count:120 ~name:"induced graphs always have self-loops"
      gen_cfg (fun (seed, n, tau) ->
        let r =
          Round_sync.run_kset
            ~timeouts:(Array.make n tau)
            ~inputs:(Array.init n (fun i -> i))
            ~latency:(Latency.with_loss ~seed ~p:0.2
                        (Latency.uniform ~seed ~lo:0.1 ~hi:2.0))
            ~max_rounds:6 ()
        in
        let ok = ref true in
        Trace.iter
          (fun _ g -> if not (Digraph.has_all_self_loops g) then ok := false)
          r.Round_sync.trace;
        !ok);
    QCheck2.Test.make ~count:120
      ~name:"sent = n^2 rounds; delivered+late+lost = sent" gen_cfg
      (fun (seed, n, tau) ->
        let r =
          Round_sync.run_kset
            ~timeouts:(Array.make n tau)
            ~inputs:(Array.init n (fun i -> i))
            ~latency:(Latency.uniform ~seed ~lo:0.1 ~hi:2.0)
            ~max_rounds:5 ()
        in
        r.Round_sync.messages_sent = n * n * 5
        && r.Round_sync.messages_delivered + r.Round_sync.messages_late
           <= r.Round_sync.messages_sent);
    QCheck2.Test.make ~count:80
      ~name:"timeout above max latency yields complete rounds" gen_cfg
      (fun (seed, n, _) ->
        let r =
          Round_sync.run_kset
            ~timeouts:(Array.make n 3.0)
            ~inputs:(Array.init n (fun i -> i))
            ~latency:(Latency.uniform ~seed ~lo:0.1 ~hi:2.9)
            ~max_rounds:4 ()
        in
        let complete = Digraph.complete ~self_loops:true n in
        let ok = ref true in
        Trace.iter
          (fun _ g -> if not (Digraph.equal g complete) then ok := false)
          r.Round_sync.trace;
        !ok);
  ]

let tests =
  [
    Alcotest.test_case "event order" `Quick test_event_order;
    Alcotest.test_case "event fifo at same time" `Quick test_event_fifo_at_same_time;
    Alcotest.test_case "event cascade" `Quick test_event_cascade;
    Alcotest.test_case "run_until" `Quick test_event_run_until;
    Alcotest.test_case "past rejected" `Quick test_event_past_rejected;
    Alcotest.test_case "latency models" `Quick test_latency_models;
    Alcotest.test_case "latency loss" `Quick test_latency_loss;
    Alcotest.test_case "latency clustered/overlay" `Quick
      test_latency_clustered_overlay;
    Alcotest.test_case "fast links -> synchronous consensus" `Quick
      test_fast_links_synchronous;
    Alcotest.test_case "slow cross links -> partition" `Quick
      test_slow_links_partition;
    Alcotest.test_case "jittery link -> transient edge" `Quick
      test_jittery_link_transient;
    Alcotest.test_case "drifting timeouts" `Quick test_drifting_timeouts;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "message accounting" `Quick test_message_accounting;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "GST partial synchrony" `Quick test_gst_partial_synchrony;
  ]
  @ List.map QCheck_alcotest.to_alcotest props
