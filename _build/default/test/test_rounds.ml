(* Tests for the round model: executor semantics, HO correspondence,
   traces. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A probe algorithm that records what it received and decides its input
   at a fixed round.  Used to pin down delivery semantics. *)
module Probe = struct
  type state = {
    self : int;
    input : int;
    mutable heard : (int * int list) list; (* round, senders (rev) *)
    mutable dec : int option;
  }

  type message = int (* sender id *)

  let name = "probe"
  let init ~n:_ ~self ~input = { self; input; heard = []; dec = None }
  let send ~round:_ s = s.self

  let transition ~round s inbox =
    let senders = ref [] in
    Array.iteri
      (fun q m ->
        match m with
        | Some sender ->
            if sender <> q then failwith "payload mismatch";
            senders := q :: !senders
        | None -> ())
      inbox;
    s.heard <- (round, !senders) :: s.heard;
    if round >= 2 && s.dec = None then s.dec <- Some s.input;
    s

  let decision s = s.dec
  let message_bits ~n:_ ~round:_ _ = 8
end

let ring n =
  (* p -> p+1 plus self loops *)
  let g = Gen.self_loops_only n in
  for p = 0 to n - 1 do
    Digraph.add_edge g p ((p + 1) mod n)
  done;
  g

let run_probe ~n ~rounds ~graphs =
  let module E = Executor.Make (Probe) in
  E.run
    (E.config
       ~inputs:(Array.init n (fun i -> 10 * i))
       ~graphs ~max_rounds:rounds ())

let test_delivery_follows_graph () =
  let n = 4 in
  let g = ring n in
  let _, states = run_probe ~n ~rounds:1 ~graphs:(fun _ -> g) in
  Array.iteri
    (fun q s ->
      match s.Probe.heard with
      | [ (1, senders) ] ->
          Alcotest.(check (list int))
            (Printf.sprintf "inbox of %d" q)
            (List.sort compare [ q; (q + n - 1) mod n ])
            (List.sort compare senders)
      | _ -> Alcotest.fail "expected exactly one round")
    states

let test_decisions_recorded () =
  let n = 3 in
  let outcome, _ = run_probe ~n ~rounds:5 ~graphs:(fun _ -> ring n) in
  check "all decided" true (Executor.all_decided outcome);
  Array.iteri
    (fun p d ->
      match d with
      | Some { Executor.round; value } ->
          check_int "decision round" 2 round;
          check_int "decision value" (10 * p) value
      | None -> Alcotest.fail "missing decision")
    outcome.Executor.decisions

let test_early_stop () =
  let outcome, _ = run_probe ~n:3 ~rounds:50 ~graphs:(fun _ -> ring 3) in
  check_int "stopped after all decided" 2 outcome.Executor.rounds_run

let test_no_early_stop_when_disabled () =
  let module E = Executor.Make (Probe) in
  let outcome, _ =
    E.run
      (E.config ~stop_when_all_decided:false
         ~inputs:[| 0; 1; 2 |]
         ~graphs:(fun _ -> ring 3)
         ~max_rounds:7 ())
  in
  check_int "ran to max" 7 outcome.Executor.rounds_run

let test_message_accounting () =
  let n = 3 in
  let outcome, _ = run_probe ~n ~rounds:1 ~graphs:(fun _ -> ring n) in
  (* Each broadcast counts n point-to-point messages. *)
  check_int "sent" (n * n) outcome.Executor.messages_sent;
  (* ring + self loops: 2 deliveries per process *)
  check_int "delivered" (2 * n) outcome.Executor.messages_delivered;
  check_int "bits" (8 * n * n) outcome.Executor.bits_sent;
  check_int "max message" 8 outcome.Executor.max_message_bits

let test_decision_values () =
  let outcome, _ = run_probe ~n:3 ~rounds:5 ~graphs:(fun _ -> ring 3) in
  Alcotest.(check (list int)) "values" [ 0; 10; 20 ]
    (Executor.decision_values outcome);
  Alcotest.(check (option int)) "last round" (Some 2)
    (Executor.last_decision_round outcome)

let test_on_round_hook () =
  let module E = Executor.Make (Probe) in
  let seen = ref [] in
  let _ =
    E.run
      (E.config
         ~on_round:(fun ~round ~graph:_ _ -> seen := round :: !seen)
         ~inputs:[| 1; 2 |]
         ~graphs:(fun _ -> ring 2)
         ~max_rounds:3 ())
  in
  Alcotest.(check (list int)) "hook rounds" [ 1; 2 ] (List.rev !seen)

let test_graph_order_mismatch () =
  let module E = Executor.Make (Probe) in
  check "raises" true
    (try
       ignore
         (E.run
            (E.config ~inputs:[| 1; 2; 3 |]
               ~graphs:(fun _ -> ring 2)
               ~max_rounds:2 ()));
       false
     with Invalid_argument _ -> true)

let test_empty_system_rejected () =
  let module E = Executor.Make (Probe) in
  check "raises" true
    (try
       ignore
         (E.run
            (E.config ~inputs:[||] ~graphs:(fun _ -> ring 1) ~max_rounds:1 ()));
       false
     with Invalid_argument _ -> true)

(* An algorithm that illegally revokes its decision: executor must fail. *)
module Revoker = struct
  type state = int ref
  type message = unit

  let name = "revoker"
  let init ~n:_ ~self:_ ~input:_ = ref 0

  let send ~round:_ _ = ()

  let transition ~round:_ s _ =
    incr s;
    s

  let decision s = if !s = 1 then Some 42 else None
  let message_bits ~n:_ ~round:_ () = 0
end

let test_revoked_decision_detected () =
  let module E = Executor.Make (Revoker) in
  check "failure raised" true
    (try
       ignore
         (E.run
            (E.config ~stop_when_all_decided:false ~inputs:[| 0 |]
               ~graphs:(fun _ -> ring 1)
               ~max_rounds:3 ()));
       false
     with Failure _ -> true)

let test_parallel_domains_equivalent () =
  (* With domains > 0 the transitions run on worker domains; results must
     be identical to the sequential path. *)
  let adv_graph r =
    let g = Gen.self_loops_only 6 in
    for p = 0 to 5 do
      Digraph.add_edge g p ((p + r) mod 6)
    done;
    g
  in
  let module E = Executor.Make (Ssg_core.Kset_agreement.Alg) in
  let run domains =
    let cfg =
      E.config ~domains ~stop_when_all_decided:false
        ~inputs:[| 5; 4; 3; 2; 1; 0 |]
        ~graphs:adv_graph ~max_rounds:15 ()
    in
    fst (E.run cfg)
  in
  let seq = run 0 and par = run 3 in
  Alcotest.(check bool) "same decisions" true
    (seq.Executor.decisions = par.Executor.decisions);
  Alcotest.(check int) "same deliveries" seq.Executor.messages_delivered
    par.Executor.messages_delivered;
  Alcotest.(check int) "same bits" seq.Executor.bits_sent par.Executor.bits_sent

(* HO correspondence *)

let test_ho_sets () =
  let g = Digraph.of_edges 4 [ (0, 1); (2, 1); (1, 1) ] in
  Alcotest.(check (list int)) "HO(1)" [ 0; 1; 2 ] (Bitset.elements (Ho.ho g 1));
  Alcotest.(check (list int)) "D(1)" [ 3 ] (Bitset.elements (Ho.rrfd g 1));
  Alcotest.(check (list int)) "HO(0)" [] (Bitset.elements (Ho.ho g 0))

let test_ho_rrfd_duality () =
  let rng = Rng.of_int 5 in
  for _ = 1 to 20 do
    let g = Gen.gnp rng 9 0.4 in
    for p = 0 to 8 do
      let ho = Ho.ho g p and d = Ho.rrfd g p in
      check "partition" true (Bitset.disjoint ho d);
      check "cover" true (Bitset.cardinal ho + Bitset.cardinal d = 9)
    done
  done

let test_pt_equivalence_eq7 () =
  (* PT from HO-intersections equals PT from RRFD-unions: eq. (7). *)
  let rng = Rng.of_int 6 in
  for _ = 1 to 20 do
    let graphs = List.init 5 (fun _ -> Gen.gnp rng 8 0.5) in
    for p = 0 to 7 do
      let hos = List.map (fun g -> Ho.ho g p) graphs in
      let ds = List.map (fun g -> Ho.rrfd g p) graphs in
      check "eq7" true
        (Bitset.equal (Ho.pt_of_hos 8 hos) (Ho.pt_of_rrfds 8 ds))
    done
  done

let test_pt_of_empty_history () =
  check "no rounds -> everyone" true
    (Bitset.equal (Ho.pt_of_hos 5 []) (Bitset.full 5))

(* Trace *)

let test_trace () =
  let t = Trace.record ~n:3 ~rounds:4 (fun r -> if r = 2 then ring 3 else Gen.self_loops_only 3) in
  check_int "rounds" 4 (Trace.rounds t);
  check_int "n" 3 (Trace.n t);
  check "round 2 is ring" true (Digraph.equal (Trace.graph t 2) (ring 3));
  check "round 1 is loops" true
    (Digraph.equal (Trace.graph t 1) (Gen.self_loops_only 3));
  let visited = ref [] in
  Trace.iter (fun r _ -> visited := r :: !visited) t;
  Alcotest.(check (list int)) "iter order" [ 1; 2; 3; 4 ] (List.rev !visited)

let test_trace_bounds () =
  let t = Trace.record ~n:2 ~rounds:2 (fun _ -> ring 2) in
  check "round 0 rejected" true
    (try ignore (Trace.graph t 0); false with Invalid_argument _ -> true);
  check "round 3 rejected" true
    (try ignore (Trace.graph t 3); false with Invalid_argument _ -> true)

let test_trace_mixed_orders_rejected () =
  check "raises" true
    (try
       ignore (Trace.make [| ring 2; ring 3 |]);
       false
     with Invalid_argument _ -> true)

let tests =
  [
    Alcotest.test_case "delivery follows graph" `Quick test_delivery_follows_graph;
    Alcotest.test_case "decisions recorded" `Quick test_decisions_recorded;
    Alcotest.test_case "early stop" `Quick test_early_stop;
    Alcotest.test_case "no early stop when disabled" `Quick
      test_no_early_stop_when_disabled;
    Alcotest.test_case "message accounting" `Quick test_message_accounting;
    Alcotest.test_case "decision values" `Quick test_decision_values;
    Alcotest.test_case "on_round hook" `Quick test_on_round_hook;
    Alcotest.test_case "graph order mismatch" `Quick test_graph_order_mismatch;
    Alcotest.test_case "empty system rejected" `Quick test_empty_system_rejected;
    Alcotest.test_case "revoked decision detected" `Quick
      test_revoked_decision_detected;
    Alcotest.test_case "parallel domains equivalent" `Quick
      test_parallel_domains_equivalent;
    Alcotest.test_case "HO sets" `Quick test_ho_sets;
    Alcotest.test_case "HO/RRFD duality" `Quick test_ho_rrfd_duality;
    Alcotest.test_case "PT equivalence (eq. 7)" `Quick test_pt_equivalence_eq7;
    Alcotest.test_case "PT of empty history" `Quick test_pt_of_empty_history;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "trace bounds" `Quick test_trace_bounds;
    Alcotest.test_case "trace mixed orders rejected" `Quick
      test_trace_mixed_orders_rejected;
  ]
