(* Tests for bit-level IO and the Lgraph wire codec. *)

open Ssg_util
open Ssg_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Bitio --- *)

let test_bitio_roundtrip_simple () =
  let w = Bitio.writer () in
  Bitio.write w ~bits:3 5;
  Bitio.write w ~bits:1 1;
  Bitio.write w ~bits:12 3000;
  check_int "bit length" 16 (Bitio.bit_length w);
  let r = Bitio.reader (Bitio.contents w) in
  check_int "3 bits" 5 (Bitio.read r ~bits:3);
  check_int "1 bit" 1 (Bitio.read r ~bits:1);
  check_int "12 bits" 3000 (Bitio.read r ~bits:12);
  check_int "nothing left" 0 (Bitio.bits_remaining r)

let test_bitio_padding () =
  let w = Bitio.writer () in
  Bitio.write w ~bits:3 7;
  check_int "one byte with padding" 1 (Bytes.length (Bitio.contents w));
  let r = Bitio.reader (Bitio.contents w) in
  check_int "value back" 7 (Bitio.read r ~bits:3);
  check_int "padding bits" 5 (Bitio.bits_remaining r)

let test_bitio_validation () =
  let w = Bitio.writer () in
  check "too wide" true
    (try Bitio.write w ~bits:2 4; false with Invalid_argument _ -> true);
  check "negative" true
    (try Bitio.write w ~bits:4 (-1); false with Invalid_argument _ -> true);
  check "zero bits" true
    (try Bitio.write w ~bits:0 0; false with Invalid_argument _ -> true);
  let r = Bitio.reader (Bytes.make 1 '\000') in
  check "read past end" true
    (try ignore (Bitio.read r ~bits:9); false with Invalid_argument _ -> true)

let test_width_for () =
  check_int "2" 1 (Bitio.width_for 2);
  check_int "3" 2 (Bitio.width_for 3);
  check_int "4" 2 (Bitio.width_for 4);
  check_int "5" 3 (Bitio.width_for 5);
  check_int "256" 8 (Bitio.width_for 256);
  check_int "257" 9 (Bitio.width_for 257)

let prop_bitio_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"bitio roundtrips any field sequence"
    QCheck2.Gen.(
      list_size (int_range 1 30)
        (let* bits = int_range 1 30 in
         let+ v = int_bound ((1 lsl bits) - 1) in
         (bits, v)))
    (fun fields ->
      let w = Bitio.writer () in
      List.iter (fun (bits, v) -> Bitio.write w ~bits v) fields;
      let r = Bitio.reader (Bitio.contents w) in
      List.for_all (fun (bits, v) -> Bitio.read r ~bits = v) fields)

(* --- Codec --- *)

let gen_lgraph =
  QCheck2.Gen.(
    let* n = int_range 2 12 in
    let edge =
      triple (int_bound (n - 1)) (int_bound (n - 1)) (int_range 1 30)
    in
    let+ es = list_size (int_bound 20) edge in
    let g = Lgraph.create n ~self:0 in
    List.iter (fun (q, p, l) -> Lgraph.set_edge g q p ~label:l) es;
    g)

let test_codec_roundtrip_example () =
  let g = Lgraph.create 6 ~self:5 in
  Lgraph.set_edge g 1 5 ~label:3;
  Lgraph.set_edge g 4 5 ~label:7;
  Lgraph.add_node g 2;
  let bytes = Codec.encode g ~label_bits:4 in
  let g' = Codec.decode bytes ~n:6 ~self:5 ~label_bits:4 in
  check "roundtrip" true (Lgraph.equal g g')

let test_codec_bit_length_exact () =
  let g = Lgraph.create 6 ~self:0 in
  Lgraph.set_edge g 1 0 ~label:2;
  Lgraph.set_edge g 3 0 ~label:5;
  (* header: width_for 7 (=3) + 2*3 = 9; nodes: 3*3 = 9; edges: 2*(6+3)=18 *)
  check_int "exact bit length" 36 (Codec.encoded_bit_length g ~label_bits:3);
  let w = Bitio.writer () in
  Codec.write g ~label_bits:3 w;
  check_int "writer agrees" 36 (Bitio.bit_length w)

let test_codec_label_overflow () =
  let g = Lgraph.create 4 ~self:0 in
  Lgraph.set_edge g 1 0 ~label:9;
  check "label too wide" true
    (try ignore (Codec.encode g ~label_bits:3); false
     with Invalid_argument _ -> true)

let test_codec_malformed_input () =
  (* a node count larger than n *)
  let w = Bitio.writer () in
  Bitio.write w ~bits:(Bitio.width_for 5) 4;
  check "bad node count" true
    (try
       ignore (Codec.decode (Bitio.contents w) ~n:3 ~self:0 ~label_bits:3);
       false
     with Invalid_argument _ -> true)

let prop_codec_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"codec roundtrips any labelled graph"
    gen_lgraph (fun g ->
      let bytes = Codec.encode g ~label_bits:5 in
      Lgraph.equal g
        (Codec.decode bytes ~n:(Lgraph.capacity g) ~self:0 ~label_bits:5))

let prop_codec_length =
  QCheck2.Test.make ~count:300
    ~name:"encoded length = header + Lgraph.encoded_bits" gen_lgraph (fun g ->
      let w = Bitio.writer () in
      Codec.write g ~label_bits:5 w;
      Bitio.bit_length w
      = Codec.header_bits ~n:(Lgraph.capacity g)
        + Lgraph.encoded_bits g ~label_bits:5)

let tests =
  [
    Alcotest.test_case "bitio roundtrip" `Quick test_bitio_roundtrip_simple;
    Alcotest.test_case "bitio padding" `Quick test_bitio_padding;
    Alcotest.test_case "bitio validation" `Quick test_bitio_validation;
    Alcotest.test_case "width_for" `Quick test_width_for;
    Alcotest.test_case "codec roundtrip example" `Quick test_codec_roundtrip_example;
    Alcotest.test_case "codec exact bit length" `Quick test_codec_bit_length_exact;
    Alcotest.test_case "codec label overflow" `Quick test_codec_label_overflow;
    Alcotest.test_case "codec malformed input" `Quick test_codec_malformed_input;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_bitio_roundtrip; prop_codec_roundtrip; prop_codec_length ]
