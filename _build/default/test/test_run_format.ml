(* Tests for the run-description file format. *)

open Ssg_util
open Ssg_graph
open Ssg_adversary

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let same_run a b =
  Adversary.n a = Adversary.n b
  && Adversary.prefix_length a = Adversary.prefix_length b
  && List.for_all
       (fun r -> Digraph.equal (Adversary.graph a r) (Adversary.graph b r))
       (List.init (Adversary.prefix_length a + 2) (fun i -> i + 1))

let test_roundtrip_examples () =
  List.iter
    (fun adv ->
      let adv' = Run_format.of_string (Run_format.to_string adv) in
      check ("roundtrip " ^ Adversary.name adv) true (same_run adv adv'))
    [
      Build.synchronous ~n:4;
      Build.lower_bound ~n:6 ~k:3;
      Build.figure1 ();
      Build.partitioned (Rng.of_int 1) ~n:8 ~blocks:2 ~prefix_len:3 ();
    ]

let prop_roundtrip =
  QCheck2.Test.make ~count:120 ~name:"format roundtrips random runs"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 1 + Rng.int rng 10 in
      let adv =
        Build.arbitrary rng ~n ~density:(Rng.float rng)
          ~prefix_len:(Rng.int rng 4) ~noise:0.5 ()
      in
      same_run adv (Run_format.of_string (Run_format.to_string adv)))

let test_parse_by_hand () =
  let adv =
    Run_format.of_string
      "ssg-run v1\n# the minimal E9 witness\nn 3\nround 1: 1>0 0>2 1>2 2>1\nstable: 1>0 0>2 1>2\n"
  in
  check_int "n" 3 (Adversary.n adv);
  check_int "prefix" 1 (Adversary.prefix_length adv);
  check "self loops implied" true
    (Digraph.has_all_self_loops (Adversary.graph adv 1));
  check "transient edge in round 1" true
    (Digraph.mem_edge (Adversary.graph adv 1) 2 1);
  check "gone in stable" false (Digraph.mem_edge (Adversary.graph adv 2) 2 1);
  check_int "min_k 1" 1 (Adversary.min_k adv)

let expect_failure label text =
  check label true
    (try
       ignore (Run_format.of_string text);
       false
     with Failure _ -> true)

let test_parse_errors () =
  expect_failure "missing header" "n 3\nstable: \n";
  expect_failure "missing n" "ssg-run v1\nstable: 0>1\n";
  expect_failure "missing stable" "ssg-run v1\nn 3\n";
  expect_failure "bad edge" "ssg-run v1\nn 3\nstable: 0>9\n";
  expect_failure "malformed edge" "ssg-run v1\nn 3\nstable: 0-1\n";
  expect_failure "non-consecutive rounds" "ssg-run v1\nn 3\nround 2: \nstable: \n";
  expect_failure "duplicate stable" "ssg-run v1\nn 2\nstable: \nstable: \n";
  expect_failure "unknown directive" "ssg-run v1\nn 2\nfrobnicate 7\nstable: \n"

let test_edgeless_stable () =
  let adv = Run_format.of_string "ssg-run v1\nn 2\nstable:\n" in
  check "only self loops" true
    (Digraph.equal (Adversary.graph adv 1) (Gen.self_loops_only 2))

let test_recurrent_rejected () =
  let rng = Rng.of_int 3 in
  let adv =
    Build.with_recurrent_noise rng (Build.synchronous ~n:3) ~noise:0.2
  in
  check "recurrent rejected" true
    (try ignore (Run_format.to_string adv); false
     with Invalid_argument _ -> true)

let test_save_load_file () =
  let adv = Build.lower_bound ~n:5 ~k:2 in
  let path = Filename.temp_file "ssg_run" ".ssg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Run_format.save adv path;
      check "file roundtrip" true (same_run adv (Run_format.load path)))

let tests =
  [
    Alcotest.test_case "roundtrip examples" `Quick test_roundtrip_examples;
    Alcotest.test_case "parse by hand" `Quick test_parse_by_hand;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "edgeless stable" `Quick test_edgeless_stable;
    Alcotest.test_case "recurrent rejected" `Quick test_recurrent_rejected;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ]
