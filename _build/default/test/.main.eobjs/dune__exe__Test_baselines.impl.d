test/test_baselines.ml: Alcotest Array Build Executor Flood_consensus Floodmin Metrics Naive_min Printf Rng Round_model Runner Ssg_adversary Ssg_baselines Ssg_rounds Ssg_sim Ssg_util
