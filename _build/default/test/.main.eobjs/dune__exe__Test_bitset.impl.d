test/test_bitset.ml: Alcotest Bitset Int List Printf QCheck2 QCheck_alcotest Set Ssg_util
