test/test_timing.ml: Alcotest Analysis Array Digraph Event_sim Gen Latency List Option QCheck2 QCheck_alcotest Round_sync Skeleton Ssg_graph Ssg_rounds Ssg_skeleton Ssg_timing Trace
