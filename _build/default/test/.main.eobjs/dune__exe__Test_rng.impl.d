test/test_rng.ml: Alcotest Array Fun List Rng Ssg_util
