test/test_experiment.ml: Alcotest Experiment List Ssg_sim Ssg_util String Table
