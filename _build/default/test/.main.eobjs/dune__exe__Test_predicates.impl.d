test/test_predicates.ml: Alcotest Array Bitset Digraph Fun Gen List Mis Predicate QCheck2 QCheck_alcotest Ssg_graph Ssg_predicates Ssg_rounds Ssg_util
