test/test_apps.ml: Adversary Alcotest Analysis Array Bitset Build Digraph Fun Leader List Printf Renaming Repeated Rng Ssg_adversary Ssg_apps Ssg_graph Ssg_rounds Ssg_sim Ssg_skeleton Ssg_util
