test/test_stats.ml: Alcotest Array Ssg_util Stats
