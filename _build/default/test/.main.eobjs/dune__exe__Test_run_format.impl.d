test/test_run_format.ml: Adversary Alcotest Build Digraph Filename Fun Gen List QCheck2 QCheck_alcotest Rng Run_format Ssg_adversary Ssg_graph Ssg_util Sys
