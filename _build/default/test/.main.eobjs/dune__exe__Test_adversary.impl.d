test/test_adversary.ml: Adversary Alcotest Analysis Bitset Build Digraph Gen List Printf Rng Skeleton Ssg_adversary Ssg_graph Ssg_skeleton Ssg_util
