test/test_codec.ml: Alcotest Bitio Bytes Codec Lgraph List QCheck2 QCheck_alcotest Ssg_graph Ssg_util
