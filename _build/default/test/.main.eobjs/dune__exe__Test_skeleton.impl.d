test/test_skeleton.ml: Alcotest Analysis Array Bitset Digraph Fun Gen Ho List QCheck2 QCheck_alcotest Reach Rng Scc Skeleton Ssg_graph Ssg_rounds Ssg_skeleton Ssg_util Timely Trace
