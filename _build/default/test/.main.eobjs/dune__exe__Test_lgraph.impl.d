test/test_lgraph.ml: Alcotest Bitset Digraph Lgraph List QCheck2 QCheck_alcotest Reach Ssg_graph Ssg_util
