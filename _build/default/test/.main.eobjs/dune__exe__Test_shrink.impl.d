test/test_shrink.ml: Adversary Alcotest Build Digraph Metrics Printf Rng Runner Shrink Ssg_adversary Ssg_graph Ssg_sim Ssg_util
