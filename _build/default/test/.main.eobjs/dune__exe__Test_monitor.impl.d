test/test_monitor.ml: Alcotest Array Bitset Build Digraph Gen Kset_agreement Lgraph List Metrics Monitor Rng Runner Ssg_adversary Ssg_core Ssg_graph Ssg_sim Ssg_util String
