test/test_kset.ml: Adversary Alcotest Array Build Executor List Metrics Printf Rng Runner Skeleton Ssg_adversary Ssg_core Ssg_rounds Ssg_sim Ssg_skeleton Ssg_util
