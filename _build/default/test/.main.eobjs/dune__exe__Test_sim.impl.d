test/test_sim.ml: Adversary Alcotest Array Build Executor List Metrics Render Rng Runner Series Ssg_adversary Ssg_baselines Ssg_graph Ssg_rounds Ssg_sim Ssg_util String
