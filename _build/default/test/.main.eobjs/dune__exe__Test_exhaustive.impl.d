test/test_exhaustive.ml: Adversary Alcotest Build Digraph Exhaustive List Metrics Runner Ssg_adversary Ssg_core Ssg_graph Ssg_sim Ssg_util
