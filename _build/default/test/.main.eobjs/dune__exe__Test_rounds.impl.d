test/test_rounds.ml: Alcotest Array Bitset Digraph Executor Gen Ho List Printf Rng Ssg_core Ssg_graph Ssg_rounds Ssg_util Trace
