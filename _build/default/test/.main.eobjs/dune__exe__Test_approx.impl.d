test/test_approx.ml: Adversary Alcotest Analysis Approx Array Bitset Build Digraph Lgraph List Printf Rng Scc Skeleton Ssg_adversary Ssg_core Ssg_graph Ssg_skeleton Ssg_util
