test/test_scc_reach.ml: Alcotest Array Bitset Digraph Gen List QCheck2 QCheck_alcotest Reach Scc Ssg_graph Ssg_util
