test/test_util_misc.ml: Alcotest Array Fun List Order Parallel Ssg_util String Table
