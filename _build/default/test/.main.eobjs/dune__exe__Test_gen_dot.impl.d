test/test_gen_dot.ml: Alcotest Bitset Digraph Dot Gen Lgraph Rng Scc Ssg_graph Ssg_util String
