test/test_dynamic.ml: Adversary Alcotest Array Build Digraph Gen List Rng Skeleton Ssg_adversary Ssg_apps Ssg_graph Ssg_skeleton Ssg_util Windowed
