test/test_digraph.ml: Alcotest Bitset Digraph Gen List Printf QCheck2 QCheck_alcotest Rng Ssg_graph Ssg_util
