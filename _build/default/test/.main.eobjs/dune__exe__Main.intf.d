test/main.mli:
