(* Boundary and degenerate-input tests across the whole stack: n = 1
   systems, zero-round executions, single-element structures. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_adversary
open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_single_process_system () =
  (* n = 1: the process is its own root component; Algorithm 1 decides
     its own value at round 1 (G_p is the singleton, trivially SC). *)
  let adv = Build.synchronous ~n:1 in
  let r = Runner.run_kset ~inputs:[| 42 |] adv in
  Alcotest.(check (list int)) "decides own value" [ 42 ]
    (Executor.decision_values r.Runner.outcome);
  (match r.Runner.outcome.Executor.decisions.(0) with
  | Some { Executor.round; _ } -> check_int "at round 1" 1 round
  | None -> Alcotest.fail "undecided");
  check_int "min_k" 1 r.Runner.min_k

let test_single_process_monitored () =
  let adv = Build.synchronous ~n:1 in
  let r = Runner.run_kset ~monitor:true adv in
  Alcotest.(check (list string)) "clean" [] r.Runner.violations

let test_two_process_lower_bound () =
  (* smallest legal lower-bound run: n=2, k=1 *)
  let adv = Build.lower_bound ~n:2 ~k:1 in
  let r = Runner.run_kset adv in
  check_int "one value" 1 (Metrics.distinct_decisions r.Runner.outcome);
  check "terminates" true (Metrics.termination r.Runner.outcome)

let test_executor_zero_rounds () =
  let module E = Executor.Make (Ssg_core.Kset_agreement.Alg) in
  let outcome, _ =
    E.run
      (E.config ~inputs:[| 1; 2 |]
         ~graphs:(fun _ -> Digraph.complete ~self_loops:true 2)
         ~max_rounds:0 ())
  in
  check_int "no rounds" 0 outcome.Executor.rounds_run;
  check "nobody decided" false (Executor.all_decided outcome);
  check_int "no messages" 0 outcome.Executor.messages_sent

let test_digraph_single_node () =
  let g = Digraph.complete ~self_loops:true 1 in
  check_int "one edge" 1 (Digraph.edge_count g);
  check "sc" true (Scc.is_strongly_connected g);
  let g = Digraph.complete ~self_loops:false 1 in
  check_int "no edges" 0 (Digraph.edge_count g);
  (* a loopless single node is still one (trivial) SCC *)
  check_int "one component" 1 (Scc.compute g).Scc.count

let test_lgraph_single_node () =
  let g = Lgraph.create 1 ~self:0 in
  check "sc" true (Lgraph.is_strongly_connected g);
  Lgraph.set_edge g 0 0 ~label:1;
  check_int "self edge" 1 (Lgraph.edge_count g);
  Lgraph.prune_unreachable g ~self:0;
  check "self kept" true (Lgraph.mem_node g 0)

let test_bitset_capacity_one () =
  let s = Bitset.create 1 in
  Bitset.add s 0;
  check_int "cardinal" 1 (Bitset.cardinal s);
  check "full equal" true (Bitset.equal s (Bitset.full 1))

let test_uniform_inputs_zero () =
  let rng = Rng.of_int 1 in
  let adv = Build.partitioned rng ~n:6 ~blocks:2 () in
  let r = Runner.run_kset ~inputs:(Array.make 6 0) adv in
  Alcotest.(check (list int)) "all zero" [ 0 ]
    (Executor.decision_values r.Runner.outcome)

let test_parallel_more_domains_than_items () =
  Alcotest.(check (array int)) "fine" [| 2; 3 |]
    (Parallel.map ~domains:16 succ [| 1; 2 |])

let test_event_schedule_at_now () =
  let sim = Ssg_timing.Event_sim.create () in
  let log = ref [] in
  Ssg_timing.Event_sim.schedule sim ~at:1.0 (fun () ->
      log := `A :: !log;
      (* scheduling at the current instant is allowed and fires after *)
      Ssg_timing.Event_sim.schedule sim ~at:1.0 (fun () -> log := `B :: !log));
  ignore (Ssg_timing.Event_sim.run sim);
  check "both fired in order" true (List.rev !log = [ `A; `B ])

let test_otr_single_process () =
  let adv = Build.synchronous ~n:1 in
  let r =
    Runner.run_packed Ssg_baselines.One_third_rule.packed ~inputs:[| 7 |]
      ~rounds:3 adv
  in
  Alcotest.(check (list int)) "decides own" [ 7 ]
    (Executor.decision_values r.Runner.outcome)

let test_floodmin_single_round_budget () =
  (* f = 0: one round suffices in the fault-free synchronous model. *)
  let adv = Build.synchronous ~n:5 in
  let alg = Ssg_baselines.Floodmin.make ~rounds:(Ssg_baselines.Floodmin.rounds_for ~f:0 ~k:1) in
  let r = Runner.run_packed alg ~rounds:1 adv in
  check "consensus in one round" true
    (Metrics.termination r.Runner.outcome
    && Metrics.distinct_decisions r.Runner.outcome = 1)

let test_skeleton_single_round_trace () =
  let g = Gen.star 4 ~center:1 in
  let t = Trace.make [| g |] in
  check "G∩1 = G1" true (Digraph.equal (Ssg_skeleton.Skeleton.final t) g);
  check_int "stabilization at 1" 1 (Ssg_skeleton.Skeleton.stabilization_round t)

let test_predicate_n2 () =
  (* smallest nontrivial predicate instance *)
  let pts = [| Bitset.of_list 2 [ 0 ]; Bitset.of_list 2 [ 1 ] |] in
  check "psrcs(1) fails for disjoint pair" false
    (Ssg_predicates.Predicate.psrcs pts ~k:1);
  check_int "min_k = 2" 2 (Ssg_predicates.Predicate.min_k pts);
  let pts = [| Bitset.of_list 2 [ 0 ]; Bitset.of_list 2 [ 0; 1 ] |] in
  check "psrcs(1) holds with shared source" true
    (Ssg_predicates.Predicate.psrcs pts ~k:1)

let test_repeated_single_instance_single_process () =
  let adv = Build.synchronous ~n:1 in
  let results =
    Ssg_apps.Repeated.run adv
      ~proposals:(fun i -> [| i |])
      ~instances:1 ~window:3
  in
  check_int "one instance" 1 (List.length results);
  check "log agrees trivially" true
    (Ssg_apps.Repeated.logs_agree results ~members:(Bitset.full 1))

let test_monitor_single_round () =
  let m = Ssg_core.Monitor.create ~n:2 in
  let g = Digraph.complete ~self_loops:true 2 in
  let views =
    Array.init 2 (fun self ->
        let lg = Lgraph.create 2 ~self in
        Lgraph.set_edge lg 0 self ~label:1;
        Lgraph.set_edge lg 1 self ~label:1;
        { Ssg_core.Monitor.pt = Bitset.full 2; approx = lg })
  in
  Ssg_core.Monitor.observe m ~round:1 ~graph:g views;
  Alcotest.(check (list string)) "clean single round" []
    (Ssg_core.Monitor.finalize ~final_skeleton_exact:false m)

let tests =
  [
    Alcotest.test_case "single-process system" `Quick test_single_process_system;
    Alcotest.test_case "single-process monitored" `Quick
      test_single_process_monitored;
    Alcotest.test_case "two-process lower bound" `Quick test_two_process_lower_bound;
    Alcotest.test_case "executor zero rounds" `Quick test_executor_zero_rounds;
    Alcotest.test_case "digraph single node" `Quick test_digraph_single_node;
    Alcotest.test_case "lgraph single node" `Quick test_lgraph_single_node;
    Alcotest.test_case "bitset capacity one" `Quick test_bitset_capacity_one;
    Alcotest.test_case "uniform zero inputs" `Quick test_uniform_inputs_zero;
    Alcotest.test_case "parallel more domains than items" `Quick
      test_parallel_more_domains_than_items;
    Alcotest.test_case "event at current instant" `Quick test_event_schedule_at_now;
    Alcotest.test_case "OTR single process" `Quick test_otr_single_process;
    Alcotest.test_case "floodmin f=0" `Quick test_floodmin_single_round_budget;
    Alcotest.test_case "single-round trace" `Quick test_skeleton_single_round_trace;
    Alcotest.test_case "predicate n=2" `Quick test_predicate_n2;
    Alcotest.test_case "repeated 1x1" `Quick
      test_repeated_single_instance_single_process;
    Alcotest.test_case "monitor single round" `Quick test_monitor_single_round;
  ]
