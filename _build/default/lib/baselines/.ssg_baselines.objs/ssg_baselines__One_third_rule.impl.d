lib/baselines/one_third_rule.ml: Array Hashtbl Option Round_model Ssg_rounds
