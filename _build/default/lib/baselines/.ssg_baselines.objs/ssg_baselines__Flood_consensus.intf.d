lib/baselines/flood_consensus.mli: Round_model Ssg_rounds
