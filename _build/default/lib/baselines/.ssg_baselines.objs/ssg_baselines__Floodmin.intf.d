lib/baselines/floodmin.mli: Round_model Ssg_rounds
