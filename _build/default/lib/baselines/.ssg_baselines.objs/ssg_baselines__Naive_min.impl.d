lib/baselines/naive_min.ml: Floodmin Printf Round_model Ssg_rounds
