lib/baselines/uniform_voting.mli: Round_model Ssg_rounds
