lib/baselines/flood_consensus.ml: Floodmin
