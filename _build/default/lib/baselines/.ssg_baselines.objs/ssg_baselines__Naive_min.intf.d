lib/baselines/naive_min.mli: Round_model Ssg_rounds
