lib/baselines/floodmin.ml: Array Printf Round_model Ssg_rounds
