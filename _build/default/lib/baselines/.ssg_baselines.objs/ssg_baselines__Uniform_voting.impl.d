lib/baselines/uniform_voting.ml: Array Fun List Round_model Ssg_rounds
