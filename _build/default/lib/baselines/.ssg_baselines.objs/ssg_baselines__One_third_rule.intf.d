lib/baselines/one_third_rule.mli: Round_model Ssg_rounds
