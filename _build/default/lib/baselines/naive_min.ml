open Ssg_rounds

let make ~horizon =
  match Floodmin.make ~rounds:horizon with
  | Round_model.Packed (module A) ->
      let module N = struct
        include A

        let name = Printf.sprintf "naive-min(H=%d)" horizon
      end in
      Round_model.Packed (module N)
