(** Flooding consensus — FloodMin at [k = 1].

    The textbook [f + 1]-round synchronous consensus: flood minima and
    decide after [f + 1] rounds.  Used as the [k = 1] anchor of the
    baseline comparison (E6). *)

open Ssg_rounds

(** [make ~f] — decide after [f + 1] rounds. *)
val make : f:int -> Round_model.packed
