(** FloodMin — the classical synchronous k-set agreement baseline
    (Chaudhuri's algorithm, cf. the paper's reference [5]).

    Every process floods the smallest proposal value it has seen and
    decides on it after a fixed number of rounds.  With at most [f]
    crash failures in the {e synchronous crash model},
    [⌊f/k⌋ + 1] rounds guarantee at most [k] distinct decisions — the
    round budget is the only knob.

    This baseline is {b sound only in its own model}: on general
    [Psrcs(k)] runs, where whole components never hear each other, a
    fixed horizon proves nothing (experiment E6 quantifies the failure).
    It is included to give the benchmarks the paper's classical point of
    comparison: few rounds and O(log n)-bit messages, versus Algorithm 1's
    model-independence at Θ(n) rounds and polynomial-size messages. *)

open Ssg_rounds

(** [make ~rounds] — flood for [rounds] rounds, then decide.  For the
    synchronous crash model with [f] crashes and target [k], pass
    [rounds = f / k + 1].  @raise Invalid_argument if [rounds < 1]. *)
val make : rounds:int -> Round_model.packed

(** [rounds_for ~f ~k] is the canonical round budget [⌊f/k⌋ + 1]. *)
val rounds_for : f:int -> k:int -> int
