open Ssg_rounds

type state = { n : int; mutable x : int; mutable dec : int option }

let value_bits = 32

module Alg = struct
  type nonrec state = state
  type message = int

  let name = "one-third-rule"
  let init ~n ~self:_ ~input = { n; x = input; dec = None }
  let send ~round:_ s = s.x

  (* Values received this round, with multiplicities. *)
  let tally inbox =
    let counts = Hashtbl.create 8 in
    let total = ref 0 in
    Array.iter
      (function
        | Some v ->
            incr total;
            Hashtbl.replace counts v
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
        | None -> ())
      inbox;
    (counts, !total)

  let transition ~round:_ s inbox =
    let counts, received = tally inbox in
    if 3 * received > 2 * s.n then begin
      (* adopt the smallest most-frequent value *)
      let best = ref None in
      Hashtbl.iter
        (fun v c ->
          match !best with
          | Some (bv, bc) when c < bc || (c = bc && v >= bv) -> ()
          | _ -> best := Some (v, c))
        counts;
      (match !best with Some (v, _) -> s.x <- v | None -> ());
      (* decide on a value carried by > 2n/3 received messages *)
      if s.dec = None then
        Hashtbl.iter
          (fun v c -> if 3 * c > 2 * s.n then s.dec <- Some v)
          counts
    end;
    s

  let decision s = s.dec
  let message_bits ~n:_ ~round:_ _ = value_bits
end

let packed = Round_model.Packed (module Alg)
let make () = packed
