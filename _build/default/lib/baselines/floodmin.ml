open Ssg_rounds

type state = { deadline : int; mutable best : int; mutable dec : int option }

let value_bits = 32

let make ~rounds =
  if rounds < 1 then invalid_arg "Floodmin.make: need at least one round";
  let module A = struct
    type nonrec state = state
    type message = int

    let name = Printf.sprintf "floodmin(R=%d)" rounds
    let init ~n:_ ~self:_ ~input = { deadline = rounds; best = input; dec = None }
    let send ~round:_ s = s.best

    let transition ~round s inbox =
      Array.iter
        (function Some v when v < s.best -> s.best <- v | _ -> ())
        inbox;
      if round >= s.deadline && s.dec = None then s.dec <- Some s.best;
      s

    let decision s = s.dec
    let message_bits ~n:_ ~round:_ _ = value_bits
  end in
  Round_model.Packed (module A)

let rounds_for ~f ~k =
  if k < 1 then invalid_arg "Floodmin.rounds_for: k must be >= 1";
  if f < 0 then invalid_arg "Floodmin.rounds_for: negative f";
  (f / k) + 1
