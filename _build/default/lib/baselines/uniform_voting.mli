(** UniformVoting — the two-round-phase consensus of the HO model
    (Charron-Bost & Schiper, the paper's reference [4]).

    Phase [φ] = rounds [2φ−1, 2φ]:
    - odd round: broadcast the estimate; if {e all} received estimates
      carry one value [v̄], vote [v̄], else vote [?]; adopt the minimum
      received estimate.
    - even round: broadcast the vote; adopt any non-[?] vote received
      (smallest); decide when {e all} received votes are one non-[?]
      value.

    Its contract completes the baseline triangle of E6:
    - safety needs {b no-split} odd rounds (any two heard-of sets
      intersect — e.g. every round has a kernel process heard by all):
      then at most one value can ever be voted per phase.  Under split
      rounds (true partitions) each island can decide its own value.
    - liveness needs a {b space-uniform} phase (everyone hears the same
      set): then everyone votes the same value and decides.

    Compare: FloodMin (needs the crash model, fast), One-Third-Rule
    (safe everywhere, needs > 2n/3 arrivals to move), Algorithm 1
    (terminates everywhere, disagreement bounded by the run's own
    min_k). *)

open Ssg_rounds

val packed : Round_model.packed

val make : unit -> Round_model.packed
