let make ~f = Floodmin.make ~rounds:(Floodmin.rounds_for ~f ~k:1)
