open Ssg_rounds

type state = {
  n : int;
  mutable x : int;
  mutable vote : int option;
  mutable dec : int option;
}

type msg = Estimate of int | Vote of int option

let value_bits = 32

module Alg = struct
  type nonrec state = state
  type message = msg

  let name = "uniform-voting"
  let init ~n ~self:_ ~input = { n; x = input; vote = None; dec = None }

  let send ~round s =
    if round mod 2 = 1 then Estimate s.x else Vote s.vote

  let received inbox =
    Array.to_list inbox |> List.filter_map Fun.id

  let transition ~round s inbox =
    let msgs = received inbox in
    if round mod 2 = 1 then begin
      (* odd round: estimates *)
      let estimates =
        List.filter_map (function Estimate v -> Some v | Vote _ -> None) msgs
      in
      (match estimates with
      | v :: rest ->
          if List.for_all (fun u -> u = v) rest then s.vote <- Some v
          else s.vote <- None;
          s.x <- List.fold_left min v rest
      | [] -> s.vote <- None)
    end
    else begin
      (* even round: votes *)
      let votes =
        List.filter_map (function Vote v -> v | Estimate _ -> None) msgs
      in
      (match votes with
      | v :: rest -> s.x <- List.fold_left min v rest
      | [] -> ());
      (* decide iff every received message carries the same real vote *)
      let all_votes =
        List.map (function Vote v -> v | Estimate _ -> None) msgs
      in
      (match all_votes with
      | Some v :: rest when List.for_all (fun u -> u = Some v) rest ->
          if s.dec = None then s.dec <- Some v
      | _ -> ());
      s.vote <- None
    end;
    s

  let decision s = s.dec

  let message_bits ~n:_ ~round:_ = function
    | Estimate _ -> 1 + value_bits
    | Vote None -> 2
    | Vote (Some _) -> 2 + value_bits
end

let packed = Round_model.Packed (module Alg)
let make () = packed
