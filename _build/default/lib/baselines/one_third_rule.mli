(** The One-Third-Rule consensus algorithm (Charron-Bost & Schiper's HO
    model — the paper's reference [4]).

    Every round, broadcast the current estimate; if more than [2n/3]
    messages arrive, adopt the smallest most-frequent received value, and
    decide on a value carried by more than [2n/3] of the {e received}
    messages.

    Its profile is the mirror image of FloodMin's, which makes it the
    interesting third corner for the baseline comparison (E6):

    - {b Safety unconditionally}: agreement and validity hold under every
      communication pattern — rounds with too few arrivals simply change
      nothing.  On a partitioned run OTR never decides in a minority
      island rather than deciding wrongly.
    - {b Liveness only under strong rounds}: it needs rounds where
      everyone hears the same > 2n/3 processes to converge and decide
      (e.g. synchronous rounds).  [Psrcs(k)] alone gives it nothing.

    Algorithm 1 sits between the two: it terminates in {e every} run and
    bounds disagreement by the run's own [min_k]. *)

open Ssg_rounds

(** The algorithm (one instance fits every n; no parameters). *)
val packed : Round_model.packed

val make : unit -> Round_model.packed
