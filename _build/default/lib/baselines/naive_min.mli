(** The naive strawman: decide the flooded minimum after a fixed horizon,
    in {e any} model.

    This is what one might try before reading Section IV: ignore graph
    structure entirely, flood minima for [horizon] rounds, decide.  It is
    exactly FloodMin run outside its model, packaged separately so the
    experiments can speak of "the naive rule": under [♦Psrcs(k)] an
    isolation prefix longer than the horizon forces up to [n] distinct
    decisions (the Section III indistinguishability argument made
    executable — experiment E7), while Algorithm 1's graph-theoretic
    decision rule waits out any finite disruption. *)

open Ssg_rounds

(** [make ~horizon] — flood minima, decide at round [horizon]. *)
val make : horizon:int -> Round_model.packed
