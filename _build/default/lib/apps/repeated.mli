(** Repeated k-set agreement — a log of agreement instances over one
    evolving communication system.

    The paper's practical motivation is "partitionable systems that need
    to reach consensus in every partition"; a system needs that not once
    but per entry of a replicated log.  This module time-multiplexes
    Algorithm 1: instance [i] occupies rounds
    [(i·window, (i+1)·window]] of the underlying run description, with
    fresh proposals per instance and fresh algorithm state, while the
    communication system keeps evolving underneath.

    If [window >= 2n + prefix slack], Lemma 11 guarantees every instance
    completes within its window; in runs whose skeleton is stable, every
    instance then yields one value per root component, so the per-member
    logs of a component are identical — replicated state machines, one
    per partition. *)

open Ssg_adversary

type instance_result = {
  index : int;  (** instance number, from 0 *)
  first_round : int;  (** global round where the instance started *)
  decisions : int option array;  (** per process *)
  distinct : int;  (** distinct decided values *)
}

(** [run adv ~proposals ~instances ~window] executes [instances]
    back-to-back windows.  [proposals i] gives the per-process proposals
    of instance [i].
    @raise Invalid_argument if [window < 1] or [instances < 1]. *)
val run :
  Adversary.t ->
  proposals:(int -> int array) ->
  instances:int ->
  window:int ->
  instance_result list

(** [default_window adv] — a window size sufficient for every instance to
    complete on [adv] ({!Adversary.decision_horizon}). *)
val default_window : Adversary.t -> int

(** [log_of results p] — process [p]'s log: its decided value per
    instance ([None] if it failed to decide within the window). *)
val log_of : instance_result list -> int -> int option list

(** [logs_agree results ~members] — all processes in [members] have
    identical, fully-decided logs. *)
val logs_agree : instance_result list -> members:Ssg_util.Bitset.t -> bool
