(** Name-space reduction (renaming) on top of k-set agreement.

    The paper's introduction cites renaming as a consumer of k-set
    agreement.  The construction here: every process proposes its original
    identifier; k-set agreement yields at most [k] decided identifiers
    ({e anchors}); a process's new name is the pair (rank of its decided
    anchor, its own rank among same-anchor processes), flattened into
    [anchor_rank * n + offset].  This maps an arbitrary identifier space
    into [0 .. k*n - 1] with no global coordination beyond the agreement
    itself. *)

open Ssg_rounds
open Ssg_adversary

(** The result of a renaming round. *)
type t = {
  anchors : int list;  (** distinct decided identifiers, ascending *)
  new_names : int array;
      (** per process: [anchor_rank * n + offset]; injective *)
}

(** [assign ~n decisions] computes names from per-process decided values
    (process [p]'s decided value is [decisions.(p)]).  Offsets are
    assigned by ascending process id within each anchor group, which every
    participant can compute locally once all decisions are known.
    @raise Invalid_argument on an empty system. *)
val assign : n:int -> int array -> t

(** [bound t ~n] — the size of the target namespace: [#anchors * n]. *)
val bound : t -> n:int -> int

(** [run adv ~names] — run Algorithm 1 on [adv] with proposal [names]
    and assign new names from the outcome.
    @raise Failure if some process did not decide within the default
    horizon (cannot happen for well-formed run descriptions). *)
val run : Adversary.t -> names:int array -> t * Executor.outcome
