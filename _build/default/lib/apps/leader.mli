(** Partition-aware leader election on top of the skeleton approximation.

    Section V suggests communication graphs as a tool for studying which
    synchrony suffices for which problem; this module is a worked
    instance: an Ω-like leader oracle built {e only} from
    {!Ssg_core.Approx}, with no extra messages — each process outputs the
    smallest process among the root components of its current
    approximation graph.

    Guarantees (tested, not proved):
    - {b Stability/agreement per root component}: once the skeleton has
      stabilized and [n] more rounds have passed, all members of a root
      component [R] of [G^∩∞] output [min R] forever.
    - {b Followers}: a process below exactly one root component converges
      to that component's leader; a process fed by several root
      components outputs the smallest of their leaders (a deterministic
      tie-break — "my partition's representative").
    - In a single-root (consensus-capable) run, all processes converge to
      one leader: an eventual leader election service. *)

open Ssg_graph

type t

(** [create ~n ~self] — the observer before round 1 (leader = self). *)
val create : n:int -> self:int -> t

(** [message t] — the graph to broadcast (delegates to {!Ssg_core.Approx}). *)
val message : t -> Lgraph.t

(** [step t ~round ~received] — absorb one round (see
    {!Ssg_core.Approx.step}). *)
val step : t -> round:int -> received:(int -> Lgraph.t option) -> unit

(** [leader t] — the current leader estimate. *)
val leader : t -> int

(** [approx t] — the underlying approximation (borrowed). *)
val approx : t -> Ssg_core.Approx.t
