lib/apps/renaming.mli: Adversary Executor Ssg_adversary Ssg_rounds
