lib/apps/renaming.ml: Adversary Array Executor List Runner Ssg_adversary Ssg_rounds Ssg_sim
