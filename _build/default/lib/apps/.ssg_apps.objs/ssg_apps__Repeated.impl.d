lib/apps/repeated.ml: Adversary Array Bitset Executor Kset_agreement List Option Ssg_adversary Ssg_core Ssg_rounds Ssg_util
