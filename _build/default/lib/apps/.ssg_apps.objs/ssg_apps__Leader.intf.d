lib/apps/leader.mli: Lgraph Ssg_core Ssg_graph
