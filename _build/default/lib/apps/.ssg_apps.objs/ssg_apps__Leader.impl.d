lib/apps/leader.ml: Approx Bitset Lgraph List Scc Ssg_core Ssg_graph Ssg_util
