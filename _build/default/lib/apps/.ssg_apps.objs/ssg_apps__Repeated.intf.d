lib/apps/repeated.mli: Adversary Ssg_adversary Ssg_util
