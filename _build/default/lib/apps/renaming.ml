open Ssg_rounds
open Ssg_adversary
open Ssg_sim

type t = { anchors : int list; new_names : int array }

let assign ~n decisions =
  if n <= 0 || Array.length decisions <> n then
    invalid_arg "Renaming.assign: bad system size";
  let anchors = List.sort_uniq compare (Array.to_list decisions) in
  let rank v =
    let rec go i = function
      | [] -> invalid_arg "Renaming.assign: value not an anchor"
      | a :: rest -> if a = v then i else go (i + 1) rest
    in
    go 0 anchors
  in
  let counters = Array.make (List.length anchors) 0 in
  let new_names =
    Array.map
      (fun v ->
        let r = rank v in
        let offset = counters.(r) in
        counters.(r) <- offset + 1;
        (r * n) + offset)
      decisions
  in
  { anchors; new_names }

let bound t ~n = List.length t.anchors * n

let run adv ~names =
  let report = Runner.run_kset ~inputs:names adv in
  let outcome = report.Runner.outcome in
  let decisions =
    Array.map
      (function
        | Some d -> d.Executor.value
        | None -> failwith "Renaming.run: a process did not decide")
      outcome.Executor.decisions
  in
  (assign ~n:(Adversary.n adv) decisions, outcome)
