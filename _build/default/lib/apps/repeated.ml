open Ssg_util
open Ssg_rounds
open Ssg_adversary
open Ssg_core

type instance_result = {
  index : int;
  first_round : int;
  decisions : int option array;
  distinct : int;
}

let run adv ~proposals ~instances ~window =
  if window < 1 then invalid_arg "Repeated.run: window must be positive";
  if instances < 1 then invalid_arg "Repeated.run: need at least one instance";
  let module E = Executor.Make (Kset_agreement.Alg) in
  List.init instances (fun i ->
      let offset = i * window in
      let cfg =
        E.config ~stop_when_all_decided:false
          ~inputs:(proposals i)
          ~graphs:(fun r -> Adversary.graph adv (offset + r))
          ~max_rounds:window ()
      in
      let outcome, _ = E.run cfg in
      let decisions =
        Array.map
          (Option.map (fun d -> d.Executor.value))
          outcome.Executor.decisions
      in
      {
        index = i;
        first_round = offset + 1;
        decisions;
        distinct = List.length (Executor.decision_values outcome);
      })

let default_window = Adversary.decision_horizon

let log_of results p = List.map (fun r -> r.decisions.(p)) results

let logs_agree results ~members =
  match Bitset.min_elt_opt members with
  | None -> true
  | Some first ->
      let reference = log_of results first in
      List.for_all (fun v -> v <> None) reference
      && Bitset.for_all
           (fun p -> log_of results p = reference)
           members
