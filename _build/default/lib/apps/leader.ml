open Ssg_util
open Ssg_graph
open Ssg_core

type t = { approx : Approx.t; mutable current : int }

let create ~n ~self = { approx = Approx.create ~n ~self (); current = self }
let message t = Approx.message t.approx

(* Leader = the smallest process in any root component of the (unlabelled)
   approximation graph: the sources of everything p still considers
   perpetually timely. *)
let recompute t =
  let g = Approx.graph_view t.approx in
  let nodes = Lgraph.nodes g in
  let roots = Scc.root_components ~nodes (Lgraph.to_digraph g) in
  let best =
    List.fold_left
      (fun acc root ->
        let m = Bitset.min_elt root in
        match acc with Some b when b <= m -> acc | _ -> Some m)
      None roots
  in
  t.current <-
    (match best with Some b -> b | None -> Approx.self t.approx)

let step t ~round ~received =
  Approx.step t.approx ~round ~received;
  recompute t

let leader t = t.current
let approx t = t.approx
