lib/graph/digraph.ml: Array Bitset Format List Printf Ssg_util
