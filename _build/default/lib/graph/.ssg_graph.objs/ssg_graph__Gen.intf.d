lib/graph/gen.mli: Bitset Digraph Rng Ssg_util
