lib/graph/codec.mli: Bitio Bytes Lgraph Ssg_util
