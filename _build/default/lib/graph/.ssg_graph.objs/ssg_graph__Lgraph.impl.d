lib/graph/lgraph.ml: Array Bitset Digraph Format List Printf Scc Ssg_util
