lib/graph/codec.ml: Bitio Bitset Lgraph Ssg_util
