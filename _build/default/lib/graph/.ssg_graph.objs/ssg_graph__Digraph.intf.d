lib/graph/digraph.mli: Bitset Format Ssg_util
