lib/graph/lgraph.mli: Bitset Digraph Format Ssg_util
