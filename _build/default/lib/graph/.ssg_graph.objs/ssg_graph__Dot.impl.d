lib/graph/dot.ml: Bitset Buffer Digraph Lgraph List Printf Ssg_util
