lib/graph/reach.mli: Bitset Digraph Ssg_util
