lib/graph/scc.ml: Array Bitset Digraph Reach Ssg_util
