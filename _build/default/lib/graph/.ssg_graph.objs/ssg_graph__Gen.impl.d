lib/graph/gen.ml: Array Bitset Digraph Rng Ssg_util
