lib/graph/reach.ml: Array Bitset Digraph Ssg_util
