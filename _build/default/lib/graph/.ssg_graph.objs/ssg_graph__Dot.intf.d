lib/graph/dot.mli: Bitset Digraph Lgraph Ssg_util
