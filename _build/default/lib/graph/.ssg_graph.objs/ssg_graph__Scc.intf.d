lib/graph/scc.mli: Bitset Digraph Ssg_util
