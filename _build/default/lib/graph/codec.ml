open Ssg_util

(* |V| must express 0..n, |E| must express 0..n². *)
let header_bits ~n = Bitio.width_for (n + 1) + Bitio.width_for ((n * n) + 1)

let write g ~label_bits w =
  let n = Lgraph.capacity g in
  let id = Bitio.width_for n in
  let nodes = Lgraph.nodes g in
  Bitio.write w ~bits:(Bitio.width_for (n + 1)) (Bitset.cardinal nodes);
  Bitset.iter (fun v -> Bitio.write w ~bits:id v) nodes;
  Bitio.write w ~bits:(Bitio.width_for ((n * n) + 1)) (Lgraph.edge_count g);
  Lgraph.iter_edges g (fun src dst label ->
      if label_bits < 62 && label lsr label_bits <> 0 then
        invalid_arg "Codec.write: label does not fit label_bits";
      Bitio.write w ~bits:id src;
      Bitio.write w ~bits:id dst;
      Bitio.write w ~bits:label_bits label)

let encode g ~label_bits =
  let w = Bitio.writer () in
  write g ~label_bits w;
  Bitio.contents w

let encoded_bit_length g ~label_bits =
  header_bits ~n:(Lgraph.capacity g) + Lgraph.encoded_bits g ~label_bits

let read ~n ~self ~label_bits r =
  let id = Bitio.width_for n in
  let g = Lgraph.create n ~self in
  let node_count = Bitio.read r ~bits:(Bitio.width_for (n + 1)) in
  if node_count > n then invalid_arg "Codec.read: node count exceeds n";
  for _ = 1 to node_count do
    let v = Bitio.read r ~bits:id in
    if v >= n then invalid_arg "Codec.read: node id out of range";
    Lgraph.add_node g v
  done;
  let edge_count = Bitio.read r ~bits:(Bitio.width_for ((n * n) + 1)) in
  if edge_count > n * n then invalid_arg "Codec.read: edge count exceeds n²";
  for _ = 1 to edge_count do
    let src = Bitio.read r ~bits:id in
    let dst = Bitio.read r ~bits:id in
    let label = Bitio.read r ~bits:label_bits in
    if src >= n || dst >= n then invalid_arg "Codec.read: edge id out of range";
    if label = 0 then invalid_arg "Codec.read: zero label";
    Lgraph.set_edge g src dst ~label
  done;
  g

let decode bytes ~n ~self ~label_bits =
  read ~n ~self ~label_bits (Bitio.reader bytes)
