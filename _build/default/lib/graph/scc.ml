open Ssg_util

type partition = { comp : int array; count : int }

(* Iterative Tarjan.  Frames carry the node and its remaining successor
   list; low-link propagation to the parent happens when a frame is
   popped.  Components are numbered in completion order, which for Tarjan
   is reverse topological order of the condensation. *)
let compute ?nodes g =
  let n = Digraph.order g in
  (match nodes with
  | Some s when Bitset.capacity s <> n ->
      invalid_arg "Scc.compute: node set capacity mismatch"
  | _ -> ());
  let in_scope i = match nodes with None -> true | Some s -> Bitset.mem s i in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let next_index = ref 0 in
  let count = ref 0 in
  let scoped_succs v =
    let acc = ref [] in
    Digraph.iter_succs g v (fun u -> if in_scope u then acc := u :: !acc);
    !acc
  in
  let visit root =
    let frames = ref [] in
    let enter v =
      index.(v) <- !next_index;
      low.(v) <- !next_index;
      incr next_index;
      stack.(!sp) <- v;
      incr sp;
      on_stack.(v) <- true;
      frames := (v, ref (scoped_succs v)) :: !frames
    in
    enter root;
    let continue = ref true in
    while !continue do
      match !frames with
      | [] -> continue := false
      | (v, rest) :: tail -> (
          match !rest with
          | u :: more ->
              rest := more;
              if index.(u) = -1 then enter u
              else if on_stack.(u) then low.(v) <- min low.(v) index.(u)
          | [] ->
              frames := tail;
              (match tail with
              | (parent, _) :: _ -> low.(parent) <- min low.(parent) low.(v)
              | [] -> ());
              if low.(v) = index.(v) then begin
                (* [v] is the root of a completed SCC: pop it. *)
                let c = !count in
                incr count;
                let again = ref true in
                while !again do
                  decr sp;
                  let w = stack.(!sp) in
                  on_stack.(w) <- false;
                  comp.(w) <- c;
                  if w = v then again := false
                done
              end)
    done
  in
  for v = 0 to n - 1 do
    if in_scope v && index.(v) = -1 then visit v
  done;
  { comp; count = !count }

let component_sets g part =
  let n = Digraph.order g in
  let sets = Array.init part.count (fun _ -> Bitset.create n) in
  Array.iteri (fun v c -> if c >= 0 then Bitset.add sets.(c) v) part.comp;
  sets

let same_component part p q =
  part.comp.(p) >= 0 && part.comp.(p) = part.comp.(q)

let component_containing ?nodes g p =
  let fwd = Reach.reachable_from ?nodes g p in
  let bwd = Reach.reaches ?nodes g p in
  Bitset.inter fwd bwd

let condensation g part =
  let dag = Digraph.create part.count in
  Digraph.iter_edges g (fun p q ->
      let cp = part.comp.(p) and cq = part.comp.(q) in
      if cp >= 0 && cq >= 0 && cp <> cq then Digraph.add_edge dag cp cq);
  dag

let root_components ?nodes g =
  let part = compute ?nodes g in
  let dag = condensation g part in
  let sets = component_sets g part in
  let roots = ref [] in
  for c = part.count - 1 downto 0 do
    if Digraph.in_degree dag c = 0 then roots := sets.(c) :: !roots
  done;
  !roots

let is_strongly_connected ?nodes g =
  let n = Digraph.order g in
  let scope = match nodes with None -> Bitset.full n | Some s -> s in
  match Bitset.min_elt_opt scope with
  | None -> false
  | Some p ->
      Bitset.subset scope (Reach.reachable_from ~nodes:scope g p)
      && Bitset.subset scope (Reach.reaches ~nodes:scope g p)

let is_root_component ?nodes g c =
  let n = Digraph.order g in
  let scope = match nodes with None -> Bitset.full n | Some s -> s in
  if not (Bitset.subset c scope) then false
  else if not (is_strongly_connected ~nodes:c g) then false
  else begin
    let outside = Bitset.diff scope c in
    let no_incoming q =
      let from = Digraph.preds g q in
      Bitset.inter_into ~into:from outside;
      Bitset.is_empty from
    in
    Bitset.for_all no_incoming c
  end
