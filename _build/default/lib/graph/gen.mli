(** Random and structured digraph generators.

    These are the primitives the adversary layer composes into run
    descriptions.  All generators that involve randomness take an explicit
    {!Ssg_util.Rng.t}.  Communication graphs in this library always contain
    all self-loops (a process receives its own broadcast); generators
    advertise whether they guarantee that. *)

open Ssg_util

(** [gnp rng n p] is an Erdős–Rényi digraph: each ordered pair of distinct
    nodes is an edge independently with probability [p].  All self-loops
    are included. *)
val gnp : Rng.t -> int -> float -> Digraph.t

(** [cycle_on n order] has edges [order.(i) -> order.(i+1 mod len)] plus
    self-loops on those nodes, over universe [n].  A singleton [order]
    yields just the self-loop. *)
val cycle_on : int -> int array -> Digraph.t

(** [strongly_connected_on rng n nodes ~extra] is a random strongly
    connected graph on the node set [nodes] (a random Hamiltonian cycle
    plus each further internal edge with probability [extra]), self-loops
    included, universe [n].  @raise Invalid_argument on empty [nodes]. *)
val strongly_connected_on : Rng.t -> int -> Bitset.t -> extra:float -> Digraph.t

(** [star n ~center] has edges [center -> q] for all [q], plus all
    self-loops: every process hears the centre and itself. *)
val star : int -> center:int -> Digraph.t

(** [self_loops_only n] — every process hears only itself. *)
val self_loops_only : int -> Digraph.t

(** [sprinkle rng g p] returns a copy of [g] with each absent non-loop edge
    added independently with probability [p] — transient "extra timeliness"
    noise layered over a skeleton. *)
val sprinkle : Rng.t -> Digraph.t -> float -> Digraph.t
