(** Reachability and shortest paths on {!Digraph}.

    All functions take an optional [?nodes] restriction: the search is
    confined to the induced subgraph on that set (the start/target must be
    members, or the result is the empty relation).  Paths in the paper are
    simple and have length at most [n - 1]; [distances_from] makes such
    bounds checkable. *)

open Ssg_util

(** [reachable_from ?nodes g p] is the set of nodes reachable from [p] by
    directed paths (including [p] itself, when in [nodes]). *)
val reachable_from : ?nodes:Bitset.t -> Digraph.t -> int -> Bitset.t

(** [reaches ?nodes g q] is the set of nodes from which [q] is reachable
    (including [q]).  This is the backward closure used by Line 25 of
    Algorithm 1: nodes outside [reaches g p] cannot influence [p]. *)
val reaches : ?nodes:Bitset.t -> Digraph.t -> int -> Bitset.t

(** [distances_from ?nodes g p] maps each node to its BFS distance from
    [p], or [-1] if unreachable. *)
val distances_from : ?nodes:Bitset.t -> Digraph.t -> int -> int array

(** [distance g p q] is the length of a shortest path from [p] to [q]. *)
val distance : Digraph.t -> int -> int -> int option

(** [exists_path g p q] tests reachability (true when [p = q]). *)
val exists_path : Digraph.t -> int -> int -> bool

(** [shortest_path g p q] is the node sequence of a shortest path
    [p; ...; q], or [None].  [shortest_path g p p = Some [p]]. *)
val shortest_path : Digraph.t -> int -> int -> int list option
