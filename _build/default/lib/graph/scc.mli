(** Strongly connected components, condensation, and root components.

    The paper's analysis revolves around the SCC structure of the round
    skeletons [G^∩r]: the strongly connected component [C^r_p] containing a
    process [p], and the {e root components} — SCCs without incoming edges
    from outside — of which any [Psrcs(k)]-admissible run has at most [k]
    (Theorem 1). *)

open Ssg_util

(** A partition of (a subset of) the nodes into SCCs.  [comp.(p)] is the
    component index of node [p], or [-1] if [p] was outside the [?nodes]
    restriction.  Component indices are [0 .. count-1] and are in {e
    reverse topological order}: every edge between distinct components goes
    from a higher index to a lower one. *)
type partition = { comp : int array; count : int }

(** [compute ?nodes g] runs Tarjan's algorithm (iteratively — no stack
    overflow on long paths) on the subgraph induced by [nodes] (default:
    all nodes). *)
val compute : ?nodes:Bitset.t -> Digraph.t -> partition

(** [component_sets g part] materializes each component as a node set,
    indexed by component id. *)
val component_sets : Digraph.t -> partition -> Bitset.t array

(** [same_component part p q] — both in scope and in the same SCC. *)
val same_component : partition -> int -> int -> bool

(** [component_containing ?nodes g p] is the node set of [C_p], the SCC of
    [p] in (the [nodes]-induced subgraph of) [g]: computed directly as
    [reachable_from p ∩ reaches p] without a full SCC pass. *)
val component_containing : ?nodes:Bitset.t -> Digraph.t -> int -> Bitset.t

(** [condensation g part] is the DAG on [part.count] nodes with an edge
    [c -> c'] whenever some edge of [g] crosses from component [c] to
    [c']. Self-loops are omitted. *)
val condensation : Digraph.t -> partition -> Digraph.t

(** [root_components ?nodes g] lists the node sets of all root components:
    SCCs with no incoming edge from any in-scope node outside the
    component.  The list is nonempty for any nonempty scope (the
    condensation of a finite digraph always has a source). *)
val root_components : ?nodes:Bitset.t -> Digraph.t -> Bitset.t list

(** [is_root_component ?nodes g c] checks the root-component condition for
    the node set [c]: [c] is strongly connected, and no in-scope node
    outside [c] has an edge into [c]. *)
val is_root_component : ?nodes:Bitset.t -> Digraph.t -> Bitset.t -> bool

(** [is_strongly_connected ?nodes g] — the in-scope subgraph is one SCC
    (vacuously false for an empty scope; true for a singleton). *)
val is_strongly_connected : ?nodes:Bitset.t -> Digraph.t -> bool
