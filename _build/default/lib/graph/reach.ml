open Ssg_util

(* Frontier BFS over bitset rows: the next frontier is the union of the
   successor rows of the current frontier, minus visited nodes.  Each level
   costs O(|frontier| · n / w). *)
let bfs ~row ?nodes g start =
  let n = Digraph.order g in
  let in_scope i = match nodes with None -> true | Some s -> Bitset.mem s i in
  let visited = Bitset.create n in
  let dist = Array.make n (-1) in
  if in_scope start then begin
    Bitset.add visited start;
    dist.(start) <- 0;
    let frontier = ref (Bitset.singleton n start) in
    let d = ref 0 in
    while not (Bitset.is_empty !frontier) do
      incr d;
      let next = Bitset.create n in
      Bitset.iter (fun p -> Bitset.union_into ~into:next (row g p)) !frontier;
      (match nodes with Some s -> Bitset.inter_into ~into:next s | None -> ());
      Bitset.diff_into ~into:next visited;
      Bitset.iter (fun q -> dist.(q) <- !d) next;
      Bitset.union_into ~into:visited next;
      frontier := next
    done
  end;
  (visited, dist)

let reachable_from ?nodes g p = fst (bfs ~row:Digraph.succs ?nodes g p)
let reaches ?nodes g q = fst (bfs ~row:Digraph.preds ?nodes g q)
let distances_from ?nodes g p = snd (bfs ~row:Digraph.succs ?nodes g p)

let distance g p q =
  let d = (distances_from g p).(q) in
  if d < 0 then None else Some d

let exists_path g p q = distance g p q <> None

let shortest_path g p q =
  match distance g p q with
  | None -> None
  | Some _ ->
      (* Walk backward from [q], at each step choosing a predecessor whose
         distance from [p] is exactly one less. *)
      let dist = distances_from g p in
      let rec back node acc =
        if node = p && dist.(node) = 0 then Some (p :: acc)
        else begin
          let prev = ref None in
          Digraph.iter_preds g node (fun u ->
              if !prev = None && dist.(u) = dist.(node) - 1 then prev := Some u);
          match !prev with
          | None -> None (* unreachable: cannot happen given distance check *)
          | Some u -> back u (node :: acc)
        end
      in
      back q []
