open Ssg_util

let gnp rng n p =
  let g = Digraph.create n in
  for a = 0 to n - 1 do
    Digraph.add_edge g a a;
    for b = 0 to n - 1 do
      if a <> b && Rng.chance rng p then Digraph.add_edge g a b
    done
  done;
  g

let cycle_on n order =
  let g = Digraph.create n in
  let len = Array.length order in
  Array.iteri
    (fun i v ->
      Digraph.add_edge g v v;
      if len > 1 then Digraph.add_edge g v order.((i + 1) mod len))
    order;
  g

let strongly_connected_on rng n nodes ~extra =
  let members = Array.of_list (Bitset.elements nodes) in
  if Array.length members = 0 then
    invalid_arg "Gen.strongly_connected_on: empty node set";
  Rng.shuffle rng members;
  let g = cycle_on n members in
  Array.iter
    (fun a ->
      Array.iter
        (fun b -> if a <> b && Rng.chance rng extra then Digraph.add_edge g a b)
        members)
    members;
  g

let star n ~center =
  let g = Digraph.create n in
  for q = 0 to n - 1 do
    Digraph.add_edge g q q;
    Digraph.add_edge g center q
  done;
  g

let self_loops_only n =
  let g = Digraph.create n in
  Digraph.add_self_loops g;
  g

let sprinkle rng g p =
  let n = Digraph.order g in
  let r = Digraph.copy g in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && (not (Digraph.mem_edge r a b)) && Rng.chance rng p then
        Digraph.add_edge r a b
    done
  done;
  r
