(** Wire encoding of round-labelled graphs — Algorithm 1's message payload
    at its actual bit width.

    Section V claims the algorithm's "worst-case message bit complexity
    [is] polynomial in n"; {!Lgraph.encoded_bits} computes the payload
    size arithmetically, and this codec realizes it: the encoded length
    equals [header_bits + Lgraph.encoded_bits g ~label_bits] exactly, and
    decoding round-trips.

    Format (all fields MSB-first, widths in bits):
    - node count [|V|]: [width_for (n+1)],
    - node ids: [|V| · width_for n],
    - edge count [|E|]: [width_for (n² + 1)],
    - per edge: source, destination ([width_for n] each) and label
      ([label_bits]).

    Labels must fit [label_bits]; use [width_for (round+1)] for a graph
    whose labels are bounded by the current round. *)

open Ssg_util

(** [header_bits ~n] — the fixed cost of the two count fields. *)
val header_bits : n:int -> int

(** [encode g ~label_bits] serializes.
    @raise Invalid_argument if a label does not fit [label_bits]. *)
val encode : Lgraph.t -> label_bits:int -> Bytes.t

(** [encoded_bit_length g ~label_bits] — exact bit length of [encode]'s
    output before byte padding: [header_bits + Lgraph.encoded_bits]. *)
val encoded_bit_length : Lgraph.t -> label_bits:int -> int

(** [decode bytes ~n ~self ~label_bits] reconstructs the graph over
    universe [n] with owner [self].
    @raise Invalid_argument on malformed input. *)
val decode : Bytes.t -> n:int -> self:int -> label_bits:int -> Lgraph.t

(** [write g ~label_bits w] / [read ~n ~self ~label_bits r] — the same
    codec against caller-supplied bit streams, for embedding the graph in
    a larger message. *)
val write : Lgraph.t -> label_bits:int -> Bitio.writer -> unit

val read : n:int -> self:int -> label_bits:int -> Bitio.reader -> Lgraph.t
