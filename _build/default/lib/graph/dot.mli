(** Graphviz export, for inspecting skeletons and approximation graphs.

    Node names default to [p1 .. pn] (matching the paper's figures); the
    process with id [i] is printed as [p(i+1)]. *)

open Ssg_util

(** [of_digraph ?name ?self_loops g] renders [g] in DOT syntax.
    [self_loops] (default [false]) controls whether self-loop edges are
    emitted — the paper's figures omit them. *)
val of_digraph : ?name:string -> ?self_loops:bool -> Digraph.t -> string

(** [of_lgraph ?name ?self_loops g] renders a labelled graph; edge labels
    are the round numbers, only nodes in [Lgraph.nodes g] appear. *)
val of_lgraph : ?name:string -> ?self_loops:bool -> Lgraph.t -> string

(** [of_digraph_with_components ?name g comps] renders [g] with each node
    set of [comps] as a filled cluster — used to visualize root
    components. *)
val of_digraph_with_components :
  ?name:string -> Digraph.t -> Bitset.t list -> string
