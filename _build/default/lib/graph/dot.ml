open Ssg_util

let node_name i = Printf.sprintf "p%d" (i + 1)

let of_digraph ?(name = "G") ?(self_loops = false) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  for i = 0 to Digraph.order g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %s;\n" (node_name i))
  done;
  Digraph.iter_edges g (fun p q ->
      if self_loops || p <> q then
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s;\n" (node_name p) (node_name q)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_lgraph ?(name = "G") ?(self_loops = false) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  Bitset.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "  %s;\n" (node_name i)))
    (Lgraph.nodes g);
  Lgraph.iter_edges g (fun q p l ->
      if self_loops || q <> p then
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s [label=\"%d\"];\n" (node_name q)
             (node_name p) l));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_digraph_with_components ?(name = "G") g comps =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  List.iteri
    (fun i set ->
      Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d {\n" i);
      Buffer.add_string buf "    style=filled; color=lightgrey;\n";
      Bitset.iter
        (fun v ->
          Buffer.add_string buf (Printf.sprintf "    %s;\n" (node_name v)))
        set;
      Buffer.add_string buf "  }\n")
    comps;
  Digraph.iter_edges g (fun p q ->
      if p <> q then
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s;\n" (node_name p) (node_name q)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
