(** Finite communication patterns: the per-round graphs of a (prefix of a)
    run, materialized for offline analysis.

    Rounds are 1-based, matching the paper.  A trace fixes everything the
    skeleton/predicate machinery needs to know about a run prefix. *)

open Ssg_graph

type t

(** [make graphs] wraps the rounds [1 .. Array.length graphs]; all graphs
    must share one order, and there must be at least one round.
    @raise Invalid_argument otherwise. *)
val make : Digraph.t array -> t

(** [record ~n ~rounds f] materializes [f 1 .. f rounds]. *)
val record : n:int -> rounds:int -> (int -> Digraph.t) -> t

(** [n t] is the number of processes. *)
val n : t -> int

(** [rounds t] is the number of recorded rounds. *)
val rounds : t -> int

(** [graph t r] is [G^r] for [1 <= r <= rounds t].
    @raise Invalid_argument out of range. *)
val graph : t -> int -> Digraph.t

(** [iter f t] calls [f r g] for each recorded round in order. *)
val iter : (int -> Digraph.t -> unit) -> t -> unit
