(** The communication-closed round model of Section II.

    An algorithm is a pair of functions per round: a {e sending function}
    mapping the state at the beginning of round [r] to the message
    broadcast in [r], and a {e transition function} mapping the state and
    the vector of received round-[r] messages to the next state.  A run is
    completely determined by the initial states and the sequence of
    communication graphs — there is no other source of nondeterminism.

    Processes are the integers [0 .. n-1]; proposal and decision values are
    integers.  Decisions are exposed through [decision] and must be
    irrevocable: once [decision s = Some v], every subsequent state must
    report the same [v] (the executor enforces this). *)

module type ALGORITHM = sig
  type state
  type message

  val name : string

  (** [init ~n ~self ~input] is the state of process [self] before
      round 1. *)
  val init : n:int -> self:int -> input:int -> state

  (** [send ~round s] is the message broadcast in [round] (the model is
      broadcast-based: the same message goes to everyone; who receives it
      is decided solely by the round's communication graph). *)
  val send : round:int -> state -> message

  (** [transition ~round s inbox] is the state after [round].
      [inbox.(q) = Some m] iff the edge [q -> self] is in the round's
      communication graph, i.e. [self] heard of [q]. *)
  val transition : round:int -> state -> message option array -> state

  (** [decision s] is the decided value, if the process has decided. *)
  val decision : state -> int option

  (** [message_bits ~n ~round m] is the wire size of [m] in bits, for the
      message-complexity accounting.  [round] bounds the label magnitude
      for encodings that include round numbers. *)
  val message_bits : n:int -> round:int -> message -> int
end

(** An algorithm packed with its state/message types hidden — what the
    simulation harness passes around. *)
type packed =
  | Packed :
      (module ALGORITHM with type state = 's and type message = 'm)
      -> packed

val name_of : packed -> string
