open Ssg_graph

type t = { order : int; graphs : Digraph.t array }

let make graphs =
  if Array.length graphs = 0 then invalid_arg "Trace.make: no rounds";
  let order = Digraph.order graphs.(0) in
  Array.iter
    (fun g ->
      if Digraph.order g <> order then
        invalid_arg "Trace.make: inconsistent graph orders")
    graphs;
  { order; graphs }

let record ~n ~rounds f =
  if rounds <= 0 then invalid_arg "Trace.record: need at least one round";
  let graphs =
    Array.init rounds (fun i ->
        let g = f (i + 1) in
        if Digraph.order g <> n then
          invalid_arg "Trace.record: graph order mismatch";
        g)
  in
  make graphs

let n t = t.order
let rounds t = Array.length t.graphs

let graph t r =
  if r < 1 || r > Array.length t.graphs then
    invalid_arg (Printf.sprintf "Trace.graph: round %d out of range" r);
  t.graphs.(r - 1)

let iter f t = Array.iteri (fun i g -> f (i + 1) g) t.graphs
