(** The Heard-Of / Round-by-Round-Fault-Detector correspondence (eqs. (6)
    and (7) of the paper).

    Our primitive notion is the round communication graph [G^r]; the HO
    model's heard-of set and Gafni's RRFD output are derived views of it:

    - [HO(p, r)] = the predecessors of [p] in [G^r] — who [p] heard of;
    - [D(p, r)]  = [Π \ HO(p, r)] — whom [p]'s fault detector suspects;
    - [PT(p, r)] = [∩_{r' <= r} HO(p, r')] = [Π \ ∪_{r' <= r} D(p, r')]. *)

open Ssg_util
open Ssg_graph

(** [ho graph p] is [HO(p, r)] for the round whose graph is [graph]. *)
val ho : Digraph.t -> int -> Bitset.t

(** [rrfd graph p] is [D(p, r) = Π \ HO(p, r)]. *)
val rrfd : Digraph.t -> int -> Bitset.t

(** [pt_of_hos n hos] is the timely neighbourhood obtained by intersecting
    heard-of sets — the left equality of eq. (7).  An empty list yields
    [Π]. *)
val pt_of_hos : int -> Bitset.t list -> Bitset.t

(** [pt_of_rrfds n ds] is [Π \ ∪ ds] — the right equality of eq. (7). *)
val pt_of_rrfds : int -> Bitset.t list -> Bitset.t
