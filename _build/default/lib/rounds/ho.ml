open Ssg_util
open Ssg_graph

let ho graph p = Digraph.preds graph p

let rrfd graph p =
  let d = Bitset.full (Digraph.order graph) in
  Bitset.diff_into ~into:d (Digraph.preds graph p);
  d

let pt_of_hos n hos =
  let pt = Bitset.full n in
  List.iter (fun h -> Bitset.inter_into ~into:pt h) hos;
  pt

let pt_of_rrfds n ds =
  let pt = Bitset.full n in
  List.iter (fun d -> Bitset.diff_into ~into:pt d) ds;
  pt
