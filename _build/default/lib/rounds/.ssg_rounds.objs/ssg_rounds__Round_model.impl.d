lib/rounds/round_model.ml:
