lib/rounds/round_model.mli:
