lib/rounds/trace.ml: Array Digraph Printf Ssg_graph
