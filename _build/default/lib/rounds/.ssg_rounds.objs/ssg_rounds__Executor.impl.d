lib/rounds/executor.ml: Array Digraph List Logs Option Printf Round_model Ssg_graph Ssg_util Stdlib
