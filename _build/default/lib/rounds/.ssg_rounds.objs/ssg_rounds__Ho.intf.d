lib/rounds/ho.mli: Bitset Digraph Ssg_graph Ssg_util
