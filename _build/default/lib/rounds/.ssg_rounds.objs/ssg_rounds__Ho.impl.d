lib/rounds/ho.ml: Bitset Digraph List Ssg_graph Ssg_util
