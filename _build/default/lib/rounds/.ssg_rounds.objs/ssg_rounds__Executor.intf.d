lib/rounds/executor.mli: Digraph Round_model Ssg_graph
