lib/rounds/trace.mli: Digraph Ssg_graph
