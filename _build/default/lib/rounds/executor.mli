(** Deterministic execution of a round-model algorithm against a sequence
    of communication graphs.

    The executor is the "system": in each round [r = 1, 2, ...] it collects
    every process's broadcast, delivers message [m_p] to [q] exactly when
    the edge [(p -> q)] is in the round's graph, and applies the transition
    function.  It also enforces the model's sanity conditions (graph order
    matches [n], decisions are irrevocable) and accounts messages and
    bits. *)

open Ssg_graph

(** Per-process decision record: the round in which the process first
    decided, and the decided value. *)
type decision = { round : int; value : int }

type outcome = {
  n : int;
  rounds_run : int;
  decisions : decision option array;  (** indexed by process *)
  messages_sent : int;
      (** broadcasts count as [n] point-to-point messages each *)
  messages_delivered : int;  (** edges actually present in round graphs *)
  bits_sent : int;  (** sum of [message_bits · n] over all broadcasts *)
  max_message_bits : int;  (** largest single message on the wire *)
}

(** [all_decided o] — every process has decided. *)
val all_decided : outcome -> bool

(** [decision_values o] is the sorted list of distinct decided values. *)
val decision_values : outcome -> int list

(** [last_decision_round o] is the latest decision round, or [None] if no
    process decided. *)
val last_decision_round : outcome -> int option

(** Typed execution: functorize over the algorithm to get hooks that can
    observe the concrete per-process states (used by the lemma monitors
    and the Figure 1 reproduction). *)
module Make (A : Round_model.ALGORITHM) : sig
  type config = {
    inputs : int array;  (** proposal value of each process; fixes [n] *)
    graphs : int -> Digraph.t;
        (** communication graph of round [r >= 1]; must have order [n] *)
    max_rounds : int;
    stop_when_all_decided : bool;
        (** end the run early once every process has decided *)
    on_round : (round:int -> graph:Digraph.t -> A.state array -> unit) option;
        (** called after each round's transitions with the new states; the
            graph is the round's communication graph (do not mutate) *)
    domains : int;
        (** worker domains for intra-round parallelism (default 0 =
            sequential).  Per-process transitions are independent — each
            touches only its own state and reads the shared immutable
            payloads — so they parallelize safely.  Worth it from roughly
            [n >= 64], where a round costs ~1 ms. *)
  }

  val config :
    ?stop_when_all_decided:bool ->
    ?on_round:(round:int -> graph:Digraph.t -> A.state array -> unit) ->
    ?domains:int ->
    inputs:int array ->
    graphs:(int -> Digraph.t) ->
    max_rounds:int ->
    unit ->
    config

  (** [run cfg] executes and returns the outcome together with the final
      states.  @raise Invalid_argument on malformed configs (empty system,
      graph order mismatch).  @raise Failure if the algorithm revokes or
      changes a decision. *)
  val run : config -> outcome * A.state array
end

(** [run_packed ?stop_when_all_decided alg ~inputs ~graphs ~max_rounds]
    executes a packed algorithm without state observation. *)
val run_packed :
  ?stop_when_all_decided:bool ->
  Round_model.packed ->
  inputs:int array ->
  graphs:(int -> Digraph.t) ->
  max_rounds:int ->
  outcome
