module type ALGORITHM = sig
  type state
  type message

  val name : string
  val init : n:int -> self:int -> input:int -> state
  val send : round:int -> state -> message
  val transition : round:int -> state -> message option array -> state
  val decision : state -> int option
  val message_bits : n:int -> round:int -> message -> int
end

type packed =
  | Packed :
      (module ALGORITHM with type state = 's and type message = 'm)
      -> packed

let name_of (Packed (module A)) = A.name
