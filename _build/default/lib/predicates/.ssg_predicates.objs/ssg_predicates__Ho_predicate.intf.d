lib/predicates/ho_predicate.mli: Digraph Ssg_graph Ssg_rounds Trace
