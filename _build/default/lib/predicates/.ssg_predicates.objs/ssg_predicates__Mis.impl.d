lib/predicates/mis.ml: Array Bitset Ssg_util
