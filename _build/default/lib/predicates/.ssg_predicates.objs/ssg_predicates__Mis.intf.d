lib/predicates/mis.mli: Bitset Ssg_util
