lib/predicates/ho_predicate.ml: Bitset Digraph Ssg_graph Ssg_rounds Ssg_util Trace
