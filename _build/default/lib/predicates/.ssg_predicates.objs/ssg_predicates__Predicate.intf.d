lib/predicates/predicate.mli: Bitset Digraph Ssg_graph Ssg_rounds Ssg_util Trace
