lib/predicates/predicate.ml: Array Bitset Mis Skeleton Ssg_skeleton Ssg_util Timely
