open Ssg_util
open Ssg_skeleton

let two_source pts s =
  let result = ref None in
  Bitset.iter
    (fun q ->
      if !result = None then
        Bitset.iter
          (fun q' ->
            if !result = None && q < q' then
              let common = Bitset.inter pts.(q) pts.(q') in
              match Bitset.min_elt_opt common with
              | Some p -> result := Some (p, q, q')
              | None -> ())
          s)
    s;
  !result

let psrc pts p s =
  let receivers = ref 0 in
  Bitset.iter (fun q -> if Bitset.mem pts.(q) p then incr receivers) s;
  !receivers >= 2

let sharing_graph pts =
  let n = Array.length pts in
  let adj = Array.init n (fun _ -> Bitset.create n) in
  for q = 0 to n - 1 do
    for q' = q + 1 to n - 1 do
      if not (Bitset.disjoint pts.(q) pts.(q')) then begin
        Bitset.add adj.(q) q';
        Bitset.add adj.(q') q
      end
    done
  done;
  adj

let check_k k = if k < 1 then invalid_arg "Predicate: k must be >= 1"

let psrcs_violation pts ~k =
  check_k k;
  if k + 1 > Array.length pts then None
  else Mis.find_independent_set (sharing_graph pts) ~size:(k + 1)

let psrcs pts ~k = psrcs_violation pts ~k = None

(* Enumerate all (k+1)-subsets of 0..n-1 and test each for a 2-source. *)
let psrcs_naive pts ~k =
  check_k k;
  let n = Array.length pts in
  let size = k + 1 in
  if size > n then true
  else begin
    let members = Array.make size 0 in
    let ok = ref true in
    let rec subsets idx lo =
      if !ok then
        if idx = size then begin
          let s = Bitset.create n in
          Array.iter (Bitset.add s) members;
          if two_source pts s = None then ok := false
        end
        else
          for v = lo to n - 1 do
            members.(idx) <- v;
            subsets (idx + 1) (v + 1)
          done
    in
    subsets 0 0;
    !ok
  end

let min_k pts =
  let alpha = Mis.independence_number (sharing_graph pts) in
  max alpha 1

let of_skeleton = Timely.sources_of

let psrcs_on_trace trace ~k = psrcs (of_skeleton (Skeleton.final trace)) ~k

let ptrue _ = true
