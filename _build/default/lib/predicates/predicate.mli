(** Communication predicates — [Psrc], [Psrcs(k)] and friends (Section III).

    For a run with timely-neighbourhood limits [PT(·)]:

    - [Psrc(p, S)] holds iff two distinct processes [q, q' ∈ S] both have
      [p] in their timely neighbourhood — [p] is a {e 2-source} for [S];
    - [Psrcs(k)] holds iff every set [S] of [k+1] processes has a 2-source.

    {b Decision procedure.}  Define the {e source-sharing graph} [H] on the
    processes with an (undirected) edge between distinct [q, q'] iff
    [PT(q) ∩ PT(q') ≠ ∅].  A set [S] has a 2-source iff some pair of [S] is
    adjacent in [H]; hence [Psrcs(k)] fails iff [H] has an independent set
    of size [k+1], i.e. {e [Psrcs(k)] ⇔ α(H) ≤ k}.  We check this with the
    exact MIS search of {!Mis} instead of enumerating all [C(n, k+1)]
    subsets.  The equivalence itself is property-tested against the naive
    enumeration in the test suite.

    All functions here take the per-process timely neighbourhoods [pts]
    ([pts.(q) = PT(q)]), obtainable from a stable skeleton via
    {!Ssg_skeleton.Timely.sources_of}. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds

(** [two_source pts s] finds a 2-source for the process set [s]: a triple
    [(p, q, q')] with [q ≠ q'] both in [s] and [p ∈ PT(q) ∩ PT(q')].
    Pairs are scanned in lexicographic order. *)
val two_source : Bitset.t array -> Bitset.t -> (int * int * int) option

(** [psrc pts p s] — [Psrc(p, S)]: [p] is a 2-source for [s]. *)
val psrc : Bitset.t array -> int -> Bitset.t -> bool

(** [sharing_graph pts] is the source-sharing graph [H] as symmetric
    adjacency rows (no self-loops). *)
val sharing_graph : Bitset.t array -> Bitset.t array

(** [psrcs pts ~k] decides [Psrcs(k)] via α(H) ≤ k.
    @raise Invalid_argument if [k < 1]. *)
val psrcs : Bitset.t array -> k:int -> bool

(** [psrcs_violation pts ~k] is a witnessing set of [k+1] pairwise
    source-disjoint processes when [Psrcs(k)] fails, [None] when it
    holds. *)
val psrcs_violation : Bitset.t array -> k:int -> Bitset.t option

(** [psrcs_naive pts ~k] decides [Psrcs(k)] by enumerating every
    [(k+1)]-subset — exponential; for cross-checking only. *)
val psrcs_naive : Bitset.t array -> k:int -> bool

(** [min_k pts] is the least [k] for which [Psrcs(k)] holds — exactly
    α(H).  Always in [1 .. n] for a nonempty system with self-timely
    processes. *)
val min_k : Bitset.t array -> int

(** [of_skeleton skel] extracts [pts] from a stable skeleton graph. *)
val of_skeleton : Digraph.t -> Bitset.t array

(** [psrcs_on_trace trace ~k] checks [Psrcs(k)] against the skeleton of a
    finite trace (exact when the trace extends past stabilization). *)
val psrcs_on_trace : Trace.t -> k:int -> bool

(** [ptrue] — the trivial predicate [TRUE] (system [Ptrue]); provided for
    symmetry with the paper's discussion of unconstrained runs. *)
val ptrue : Bitset.t array -> bool
