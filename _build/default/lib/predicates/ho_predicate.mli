(** Per-round Heard-Of predicates from the HO-model literature.

    [Psrcs(k)] is a {e perpetual} predicate over the whole run; the HO
    model (the paper's ref. [4]) also works with {e per-round} conditions
    on the heard-of sets.  These are used to classify the rounds of a
    trace — e.g. One-Third-Rule consensus is safe always and live once a
    few [two_thirds]+[uniform]-ish rounds occur.

    All predicates below take a round's communication graph and judge its
    HO sets ([HO(p, r)] = predecessors of [p]). *)

open Ssg_graph
open Ssg_rounds

(** [no_split g] — any two heard-of sets intersect
    ([∀p q. HO(p) ∩ HO(q) ≠ ∅]). *)
val no_split : Digraph.t -> bool

(** [uniform g] — all processes hear exactly the same set. *)
val uniform : Digraph.t -> bool

(** [majority g] — every process hears more than [n/2] processes. *)
val majority : Digraph.t -> bool

(** [two_thirds g] — every process hears more than [2n/3] processes. *)
val two_thirds : Digraph.t -> bool

(** [nonempty_kernel g] — some process is heard by everyone
    ([∩p HO(p) ≠ ∅]). *)
val nonempty_kernel : Digraph.t -> bool

(** [space_uniform g] — [uniform g] and the common set is everyone
    (a perfectly synchronous round). *)
val space_uniform : Digraph.t -> bool

(** [count trace pred] — how many rounds of the trace satisfy [pred]. *)
val count : Trace.t -> (Digraph.t -> bool) -> int

(** [eventually_forever trace pred] — the last round of the trace and all
    rounds from some point on satisfy [pred] (the usual ◇□ shape judged
    on a finite prefix: a suffix of the trace satisfies it). *)
val eventually_forever : Trace.t -> (Digraph.t -> bool) -> bool
