open Ssg_util
open Ssg_graph
open Ssg_rounds

let for_all_processes g f =
  let n = Digraph.order g in
  let rec go p = p >= n || (f p && go (p + 1)) in
  go 0

let for_all_pairs g f =
  let n = Digraph.order g in
  let rec go p q =
    if p >= n then true
    else if q >= n then go (p + 1) (p + 2)
    else f p q && go p (q + 1)
  in
  go 0 1

let no_split g =
  for_all_pairs g (fun p q ->
      not (Bitset.disjoint (Digraph.preds g p) (Digraph.preds g q)))

let uniform g =
  for_all_pairs g (fun p q ->
      Bitset.equal (Digraph.preds g p) (Digraph.preds g q))

let heard_more_than g frac_num frac_den =
  for_all_processes g (fun p -> frac_den * Digraph.in_degree g p > frac_num * Digraph.order g)

let majority g = heard_more_than g 1 2
let two_thirds g = heard_more_than g 2 3

let nonempty_kernel g =
  let n = Digraph.order g in
  let kernel = Bitset.full n in
  for p = 0 to n - 1 do
    Digraph.inter_preds_into g p ~into:kernel
  done;
  not (Bitset.is_empty kernel)

let space_uniform g =
  let n = Digraph.order g in
  let full = Bitset.full n in
  for_all_processes g (fun p -> Bitset.equal (Digraph.preds g p) full)

let count trace pred =
  let c = ref 0 in
  Trace.iter (fun _ g -> if pred g then incr c) trace;
  !c

let eventually_forever trace pred =
  (* the longest satisfying suffix is nonempty *)
  let rounds = Trace.rounds trace in
  let rec suffix_ok r = r > rounds || (pred (Trace.graph trace r) && suffix_ok (r + 1)) in
  let rec find r = r <= rounds && (suffix_ok r || find (r + 1)) in
  find 1 && pred (Trace.graph trace rounds)
