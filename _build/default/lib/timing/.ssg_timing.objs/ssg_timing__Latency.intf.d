lib/timing/latency.mli:
