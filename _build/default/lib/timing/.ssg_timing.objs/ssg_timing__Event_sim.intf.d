lib/timing/event_sim.mli:
