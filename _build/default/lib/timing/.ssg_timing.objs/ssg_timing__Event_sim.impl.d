lib/timing/event_sim.ml: Float Int Map
