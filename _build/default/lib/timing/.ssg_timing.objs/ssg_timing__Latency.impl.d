lib/timing/latency.ml: Array Hashtbl Int64 Rng Ssg_util
