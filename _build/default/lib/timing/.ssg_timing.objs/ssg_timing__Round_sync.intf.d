lib/timing/round_sync.mli: Latency Round_model Ssg_rounds Trace
