lib/timing/round_sync.ml: Array Digraph Event_sim Float Hashtbl Latency Round_model Ssg_core Ssg_graph Ssg_rounds Trace
