(* Priority queue of (time, seq, thunk), ordered by time then insertion
   sequence.  A Map keyed by (time, seq) is ample for the event volumes
   here (max_rounds · n² deliveries). *)

module Key = struct
  type t = float * int

  let compare (t1, s1) (t2, s2) =
    match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c
end

module Queue = Map.Make (Key)

type t = {
  mutable queue : (unit -> unit) Queue.t;
  mutable clock : float;
  mutable seq : int;
}

let create () = { queue = Queue.empty; clock = 0.0; seq = 0 }
let now sim = sim.clock

let schedule sim ~at f =
  if not (Float.is_finite at) then
    invalid_arg "Event_sim.schedule: non-finite time";
  if at < sim.clock then invalid_arg "Event_sim.schedule: time is in the past";
  sim.queue <- Queue.add (at, sim.seq) f sim.queue;
  sim.seq <- sim.seq + 1

let pending sim = Queue.cardinal sim.queue

let fire_next sim =
  match Queue.min_binding_opt sim.queue with
  | None -> false
  | Some (((at, _) as key), f) ->
      sim.queue <- Queue.remove key sim.queue;
      sim.clock <- at;
      f ();
      true

let run sim =
  while fire_next sim do
    ()
  done;
  sim.clock

let run_until sim ~limit =
  let continue = ref true in
  while !continue do
    match Queue.min_binding_opt sim.queue with
    | Some ((at, _), _) when at <= limit -> ignore (fire_next sim)
    | _ -> continue := false
  done;
  sim.clock
