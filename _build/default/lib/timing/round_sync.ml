open Ssg_graph
open Ssg_rounds

type decision = { round : int; value : int }

type result = {
  n : int;
  rounds : int;
  decisions : decision option array;
  trace : Trace.t;
  messages_sent : int;
  messages_delivered : int;
  messages_late : int;
  final_time : float;
}

module Make (A : Round_model.ALGORITHM) = struct
  type config = {
    inputs : int array;
    latency : Latency.t;
    timeouts : float array;
    max_rounds : int;
  }

  let config ?timeouts ~inputs ~latency ~max_rounds () =
    let n = Array.length inputs in
    let timeouts =
      match timeouts with Some t -> t | None -> Array.make n 1.0
    in
    { inputs; latency; timeouts; max_rounds }

  (* Per-process runtime state. *)
  type proc = {
    id : int;
    mutable state : A.state;
    mutable round : int; (* the round currently open *)
    mutable inbox : A.message option array;
    mutable decided : decision option;
  }

  let run cfg =
    let n = Array.length cfg.inputs in
    if n = 0 then invalid_arg "Round_sync.run: empty system";
    if Array.length cfg.timeouts <> n then
      invalid_arg "Round_sync.run: timeouts length mismatch";
    Array.iter
      (fun t ->
        if not (Float.is_finite t) || t <= 0.0 then
          invalid_arg "Round_sync.run: timeouts must be positive")
      cfg.timeouts;
    if cfg.max_rounds < 1 then
      invalid_arg "Round_sync.run: need at least one round";
    let sim = Event_sim.create () in
    let procs =
      Array.init n (fun id ->
          {
            id;
            state = A.init ~n ~self:id ~input:cfg.inputs.(id);
            round = 0;
            inbox = Array.make n None;
            decided = None;
          })
    in
    (* Messages buffered for rounds the receiver has not reached yet:
       (dst, round, src) -> message. *)
    let buffered : (int * int * int, A.message) Hashtbl.t =
      Hashtbl.create 64
    in
    let graphs =
      Array.init cfg.max_rounds (fun _ -> Digraph.create n)
    in
    let sent = ref 0 and delivered = ref 0 and late = ref 0 in
    let record_decision p =
      if p.decided = None then
        match A.decision p.state with
        | Some value -> p.decided <- Some { round = p.round; value }
        | None -> ()
    in
    let rec open_round p =
      p.round <- p.round + 1;
      p.inbox <- Array.make n None;
      (* pull messages that arrived early for this round *)
      for src = 0 to n - 1 do
        match Hashtbl.find_opt buffered (p.id, p.round, src) with
        | Some m ->
            Hashtbl.remove buffered (p.id, p.round, src);
            p.inbox.(src) <- Some m
        | None -> ()
      done;
      (* broadcast this round's message *)
      let msg = A.send ~round:p.round p.state in
      let round = p.round in
      for dst = 0 to n - 1 do
        incr sent;
        if dst = p.id then p.inbox.(p.id) <- Some msg
        else
          match cfg.latency ~src:p.id ~dst ~round with
          | None -> () (* lost *)
          | Some d ->
              let q = procs.(dst) in
              Event_sim.schedule sim
                ~at:(Event_sim.now sim +. d)
                (fun () -> deliver q ~src:p.id ~round msg)
      done;
      (* close after this process's own timeout *)
      Event_sim.schedule sim
        ~at:(Event_sim.now sim +. cfg.timeouts.(p.id))
        (fun () -> close_round p)
    and deliver q ~src ~round msg =
      if round < q.round then incr late (* receiver moved on: discarded *)
      else if round = q.round then q.inbox.(src) <- Some msg
      else Hashtbl.replace buffered (q.id, round, src) msg
    and close_round p =
      (* record the induced communication graph of this round *)
      Array.iteri
        (fun src m ->
          if m <> None then begin
            incr delivered;
            Digraph.add_edge graphs.(p.round - 1) src p.id
          end)
        p.inbox;
      p.state <- A.transition ~round:p.round p.state p.inbox;
      record_decision p;
      if p.round < cfg.max_rounds then open_round p
    in
    Array.iter open_round procs;
    let final_time = Event_sim.run sim in
    {
      n;
      rounds = cfg.max_rounds;
      decisions = Array.map (fun p -> p.decided) procs;
      trace = Trace.make graphs;
      messages_sent = !sent;
      messages_delivered = !delivered;
      messages_late = !late;
      final_time;
    }
end

let run_kset ?timeouts ~inputs ~latency ~max_rounds () =
  let module R = Make (Ssg_core.Kset_agreement.Alg) in
  R.run (R.config ?timeouts ~inputs ~latency ~max_rounds ())
