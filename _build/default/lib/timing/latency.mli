(** Link latency models.

    A model maps [(src, dst, round)] to the message delay on that link in
    that round, or [None] for a lost message.  Models are pure functions
    (the randomness is hashed from a seed and the arguments), so a timing
    simulation is reproducible and a link's behaviour can be queried
    without side effects.

    These models are how the paper's predicate classes arise from
    {e timing} rather than by fiat: a link that is always fast relative to
    the round timeout becomes a stable-skeleton edge; a jittery or slow
    link yields transient/no timeliness. *)

type t = src:int -> dst:int -> round:int -> float option

(** [constant d] — every message takes exactly [d]. *)
val constant : float -> t

(** [uniform ~seed ~lo ~hi] — per (src, dst, round) independent uniform
    delay in [[lo, hi)]. *)
val uniform : seed:int -> lo:float -> hi:float -> t

(** [with_loss ~seed ~p model] — each message is lost with probability
    [p] (independently), otherwise delayed per [model]. *)
val with_loss : seed:int -> p:float -> t -> t

(** [clustered ~seed ~assign ~intra ~inter] — [assign.(p)] is [p]'s
    cluster; intra-cluster messages use [intra], cross-cluster ones
    [inter].  The archetypal "fast core, slow WAN" shape. *)
val clustered : assign:int array -> intra:t -> inter:t -> t

(** [overlay ~special base] — [special ~src ~dst ~round] may return
    [Some model_result] to override [base] on selected links/rounds
    (returning [None] defers to [base]).  Used to script scenarios:
    e.g. "link 2→5 degrades from round 10 on". *)
val overlay :
  special:(src:int -> dst:int -> round:int -> float option option) -> t -> t
