(** Rebuilding communication-closed rounds on top of raw message timing —
    the bridge between the paper's abstract model and a partially
    synchronous system.

    Each process runs its own round clock: it broadcasts its round-[r]
    message, waits its own timeout, applies the transition to whatever
    round-[r] messages arrived in time, and moves on.  Deliveries are
    driven by a {!Latency} model through the {!Event_sim} engine:

    - a message for round [r] arriving while the receiver is still in
      round [r] is delivered;
    - arriving {e after} the receiver closed round [r], it is discarded
      (communication closure: exactly the paper's footnote 2);
    - arriving {e before} the receiver reached round [r] (the sender runs
      ahead), it is buffered and delivered when the receiver gets there.

    The run induces one communication graph per round — an edge
    [(p -> q)] iff [q]'s round-[r] transition consumed [p]'s round-[r]
    message — and therefore a skeleton, predicates, and everything else
    in this library.  Whether [Psrcs(k)] holds is now an {e emergent}
    property of link latencies, timeouts and drift, which is how the
    paper's introduction frames the unified treatment of asynchrony and
    failure. *)

open Ssg_rounds

(** Per-process decision record ([round] is the decider's local round). *)
type decision = { round : int; value : int }

type result = {
  n : int;
  rounds : int;  (** rounds executed by every process *)
  decisions : decision option array;
  trace : Trace.t;  (** the induced communication graphs, rounds 1.. *)
  messages_sent : int;
  messages_delivered : int;  (** consumed by a round transition in time *)
  messages_late : int;  (** arrived after the receiver closed the round *)
  final_time : float;
}

module Make (A : Round_model.ALGORITHM) : sig
  type config = {
    inputs : int array;
    latency : Latency.t;
    timeouts : float array;
        (** round duration per process; length [n].  Distinct values give
            drifting processes. *)
    max_rounds : int;
  }

  (** [config ?timeouts ~inputs ~latency ~max_rounds ()] — [timeouts]
      defaults to 1.0 everywhere. *)
  val config :
    ?timeouts:float array ->
    inputs:int array ->
    latency:Latency.t ->
    max_rounds:int ->
    unit ->
    config

  (** [run cfg] executes every process for exactly [max_rounds] local
      rounds and returns outcomes plus the induced trace.
      @raise Invalid_argument on malformed configs. *)
  val run : config -> result
end

(** [run_kset ?timeouts ~inputs ~latency ~max_rounds ()] — Algorithm 1 on
    top of the timing layer. *)
val run_kset :
  ?timeouts:float array ->
  inputs:int array ->
  latency:Latency.t ->
  max_rounds:int ->
  unit ->
  result
