(** A minimal discrete-event simulation engine.

    Events are closures scheduled at absolute times and fired in
    nondecreasing time order; events at equal times fire in scheduling
    (FIFO) order, which keeps runs deterministic.  An event handler may
    schedule further events (at or after the current time).

    This is the substrate under {!Round_sync}, which rebuilds the paper's
    round abstraction on top of raw message latencies — the "asynchrony
    captured as graphs" story of Section I made executable. *)

type t

val create : unit -> t

(** [now sim] is the time of the event currently firing (0 initially). *)
val now : t -> float

(** [schedule sim ~at f] enqueues [f] to fire at time [at].
    @raise Invalid_argument if [at] is in the past or not finite. *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [pending sim] — number of events not yet fired. *)
val pending : t -> int

(** [run sim] fires events until none remain.  Returns the final time. *)
val run : t -> float

(** [run_until sim ~limit] fires events with time [<= limit]; later events
    stay queued.  Returns the time of the last fired event (or [now]). *)
val run_until : t -> limit:float -> float
