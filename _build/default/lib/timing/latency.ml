open Ssg_util

type t = src:int -> dst:int -> round:int -> float option

(* Pure per-argument randomness: hash the tuple into a fresh SplitMix
   stream and take its first draws. *)
let stream ~seed ~src ~dst ~round =
  let h = Hashtbl.hash (seed, src, dst, round) in
  Rng.make (Int64.of_int ((h * 0x9E3779B9) lxor (seed * 2654435761)))

let constant d ~src:_ ~dst:_ ~round:_ = Some d

let uniform ~seed ~lo ~hi ~src ~dst ~round =
  if hi < lo then invalid_arg "Latency.uniform: empty range";
  let g = stream ~seed ~src ~dst ~round in
  Some (lo +. (Rng.float g *. (hi -. lo)))

let with_loss ~seed ~p model ~src ~dst ~round =
  let g = stream ~seed:(seed lxor 0x10c5) ~src ~dst ~round in
  if Rng.chance g p then None else model ~src ~dst ~round

let clustered ~assign ~intra ~inter ~src ~dst ~round =
  if assign.(src) = assign.(dst) then intra ~src ~dst ~round
  else inter ~src ~dst ~round

let overlay ~special base ~src ~dst ~round =
  match special ~src ~dst ~round with
  | Some result -> result
  | None -> base ~src ~dst ~round
