let min_by f = function
  | [] -> invalid_arg "Order.min_by: empty list"
  | x :: xs ->
      let best, _ =
        List.fold_left
          (fun (b, fb) y ->
            let fy = f y in
            if fy < fb then (y, fy) else (b, fb))
          (x, f x) xs
      in
      best

let max_by f xs = min_by (fun x -> -f x) xs

let argmin arr =
  if Array.length arr = 0 then invalid_arg "Order.argmin: empty array";
  let best = ref 0 in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) < arr.(!best) then best := i
  done;
  !best

let argmax arr =
  if Array.length arr = 0 then invalid_arg "Order.argmax: empty array";
  let best = ref 0 in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) > arr.(!best) then best := i
  done;
  !best

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let distinct xs = List.sort_uniq Stdlib.compare xs
