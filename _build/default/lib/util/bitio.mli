(** Bit-level serialization buffers.

    The message-complexity story of Section V is about {e bits}; this
    module lets the wire codec ({!Ssg_graph.Codec}) write messages at
    their actual bit width instead of hand-waving byte counts.  Values
    are written most-significant-bit-first into a growable buffer. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer

(** [write w ~bits v] appends the [bits] low bits of [v] ([0 <= v <
    2^bits], [1 <= bits <= 62]).
    @raise Invalid_argument if [v] does not fit. *)
val write : writer -> bits:int -> int -> unit

(** [bit_length w] — bits written so far. *)
val bit_length : writer -> int

(** [contents w] — the bytes written so far, zero-padded to a byte
    boundary.  The writer remains usable. *)
val contents : writer -> Bytes.t

(** {1 Reading} *)

type reader

(** [reader bytes] starts reading at bit 0. *)
val reader : Bytes.t -> reader

(** [read r ~bits] consumes and returns the next [bits] bits.
    @raise Invalid_argument on reading past the end. *)
val read : reader -> bits:int -> int

(** [bits_remaining r] — bits not yet consumed (counting padding). *)
val bits_remaining : reader -> int

(** {1 Width helpers} *)

(** [width_for n] is the number of bits needed to write values in
    [0 .. n-1] (at least 1). *)
val width_for : int -> int
