(** Small ordering helpers shared across algorithms.

    Algorithm 1 takes minima over sets of proposal values (Line 27), the
    analysis code takes argmins over rounds, etc.; these helpers keep those
    call sites declarative. *)

(** [min_by f xs] is the element minimizing [f], leftmost on ties.
    @raise Invalid_argument on an empty list. *)
val min_by : ('a -> int) -> 'a list -> 'a

(** [max_by f xs] is the element maximizing [f], leftmost on ties.
    @raise Invalid_argument on an empty list. *)
val max_by : ('a -> int) -> 'a list -> 'a

(** [argmin arr] is the index of the smallest element (leftmost on ties).
    @raise Invalid_argument on an empty array. *)
val argmin : int array -> int

(** [argmax arr] is the index of the largest element (leftmost on ties). *)
val argmax : int array -> int

(** [clamp ~lo ~hi x] bounds [x] into [[lo, hi]]. *)
val clamp : lo:int -> hi:int -> int -> int

(** [distinct xs] is the list of distinct values, sorted ascending. *)
val distinct : int list -> int list
