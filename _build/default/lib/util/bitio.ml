type writer = { mutable buf : Bytes.t; mutable len_bits : int }

let writer () = { buf = Bytes.make 16 '\000'; len_bits = 0 }

let ensure w bits =
  let needed_bytes = (w.len_bits + bits + 7) / 8 in
  if needed_bytes > Bytes.length w.buf then begin
    let bigger = Bytes.make (max needed_bytes (2 * Bytes.length w.buf)) '\000' in
    Bytes.blit w.buf 0 bigger 0 (Bytes.length w.buf);
    w.buf <- bigger
  end

let set_bit w index value =
  let byte = index / 8 and off = 7 - (index mod 8) in
  if value then
    Bytes.set w.buf byte
      (Char.chr (Char.code (Bytes.get w.buf byte) lor (1 lsl off)))

let write w ~bits v =
  if bits < 1 || bits > 62 then invalid_arg "Bitio.write: bits out of range";
  if v < 0 || (bits < 62 && v lsr bits <> 0) then
    invalid_arg "Bitio.write: value does not fit";
  ensure w bits;
  for i = bits - 1 downto 0 do
    set_bit w w.len_bits ((v lsr i) land 1 = 1);
    w.len_bits <- w.len_bits + 1
  done

let bit_length w = w.len_bits
let contents w = Bytes.sub w.buf 0 ((w.len_bits + 7) / 8)

type reader = { data : Bytes.t; mutable pos : int }

let reader data = { data; pos = 0 }

let read r ~bits =
  if bits < 1 || bits > 62 then invalid_arg "Bitio.read: bits out of range";
  if r.pos + bits > 8 * Bytes.length r.data then
    invalid_arg "Bitio.read: past end of buffer";
  let v = ref 0 in
  for _ = 1 to bits do
    let byte = r.pos / 8 and off = 7 - (r.pos mod 8) in
    let bit = (Char.code (Bytes.get r.data byte) lsr off) land 1 in
    v := (!v lsl 1) lor bit;
    r.pos <- r.pos + 1
  done;
  !v

let bits_remaining r = (8 * Bytes.length r.data) - r.pos

let width_for n =
  let rec go b v = if v >= n then b else go (b + 1) (v * 2) in
  go 1 2
