(** Fixed-capacity sets of small integers, packed into native [int] words.

    Bitsets are the workhorse representation of this library: a set of
    process identifiers [0 .. n-1] and a row of a dense adjacency matrix are
    both bitsets.  All operations are O(capacity / word_size) unless noted.

    Mutating operations end in [_into] or are clearly imperative ([add],
    [remove], ...); functional variants allocate a fresh set.  Two bitsets
    may only be combined when they have the same capacity; this is enforced
    with [Invalid_argument]. *)

type t

(** [create n] is the empty set over universe [{0, ..., n-1}].
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

(** [full n] is the set [{0, ..., n-1}]. *)
val full : int -> t

(** [singleton n i] is [{i}] over universe of size [n]. *)
val singleton : int -> int -> t

(** [of_list n xs] is the set containing exactly the elements of [xs]. *)
val of_list : int -> int list -> t

(** [capacity s] is the size [n] of the universe of [s]. *)
val capacity : t -> int

(** [copy s] is a fresh, independent copy of [s]. *)
val copy : t -> t

(** [blit ~src ~dst] overwrites [dst] with the contents of [src]. *)
val blit : src:t -> dst:t -> unit

(** [mem s i] tests membership.  Out-of-range [i] raises. *)
val mem : t -> int -> bool

(** [add s i] inserts [i] in place. *)
val add : t -> int -> unit

(** [remove s i] deletes [i] in place. *)
val remove : t -> int -> unit

(** [clear s] empties [s] in place. *)
val clear : t -> unit

(** [fill s] makes [s] the full universe, in place. *)
val fill : t -> unit

(** [cardinal s] is the number of elements (popcount). *)
val cardinal : t -> int

val is_empty : t -> bool

(** [equal a b] — extensional equality. *)
val equal : t -> t -> bool

(** [subset a b] is [true] iff every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [disjoint a b] is [true] iff [a ∩ b = ∅]. *)
val disjoint : t -> t -> bool

(** [inter_into ~into src] computes [into ← into ∩ src]. *)
val inter_into : into:t -> t -> unit

(** [union_into ~into src] computes [into ← into ∪ src]. *)
val union_into : into:t -> t -> unit

(** [diff_into ~into src] computes [into ← into \ src]. *)
val diff_into : into:t -> t -> unit

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

(** [iter f s] applies [f] to each element in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over elements in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool

(** [elements s] lists the elements in increasing order. *)
val elements : t -> int list

(** [min_elt s] is the smallest element.
    @raise Not_found if [s] is empty. *)
val min_elt : t -> int

(** [min_elt_opt s] is the smallest element, if any. *)
val min_elt_opt : t -> int option

(** [choose s] is an arbitrary element (the smallest).
    @raise Not_found if [s] is empty. *)
val choose : t -> int

(** [compare] is a total order compatible with [equal] (lexicographic on
    words); it has no set-theoretic meaning beyond supporting [Map]/[Set]. *)
val compare : t -> t -> int

val hash : t -> int

(** [pp] prints as [{0, 3, 5}]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
