(* SplitMix64 (Steele, Lea & Flood 2014).  Small state, passes BigCrush,
   and supports cheap splitting — ideal for reproducible parallel runs. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let make seed = { state = seed }
let of_int seed = make (Int64.of_int seed)
let copy g = { state = g.state }

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = next g in
  (* Re-mix with a distinct finalizer so parent and child streams differ
     even for pathological seeds. *)
  make (mix (Int64.logxor s 0xD6E8FEB86659FD93L))

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (next g) 2) in
    let v = r mod bound in
    if r - v > max_int - bound then go () else v
  in
  go ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g =
  let bits53 = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  bits53 /. 9007199254740992.0 (* 2^53 *)

let bool g = Int64.logand (next g) 1L = 1L
let chance g p = if p >= 1.0 then true else if p <= 0.0 then false else float g < p

let pick g arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int g (Array.length arr))

let pick_list g xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth xs (int g (List.length xs))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation g n =
  let arr = Array.init n (fun i -> i) in
  shuffle g arr;
  arr

let sample g n k =
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  let perm = permutation g n in
  let picked = Array.sub perm 0 k in
  Array.sort Stdlib.compare picked;
  picked
