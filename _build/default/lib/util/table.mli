(** Plain-text table rendering for the benchmark/experiment harness.

    The bench executable regenerates every figure/claim of the paper as a
    table of rows; this module keeps that output aligned and diffable. *)

type t

(** [create headers] starts a table with the given column headers. *)
val create : string list -> t

(** [add_row t cells] appends a row.  Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument]. *)
val add_row : t -> string list -> unit

(** [add_rule t] appends a horizontal separator. *)
val add_rule : t -> unit

(** [render t] produces the aligned table, one trailing newline. *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit

(** [to_csv t] renders as comma-separated values (no alignment, rules
    skipped); cells containing commas or quotes are quoted. *)
val to_csv : t -> string

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
