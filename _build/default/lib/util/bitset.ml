(* Packed bitsets over [0 .. capacity-1].  Words are native ints; we use
   [word_bits] bits per word.  The last word may contain slack bits that are
   kept at zero by every operation ([fill] masks them), so [cardinal],
   [equal] and friends can work word-wise without special cases. *)

let word_bits = Sys.int_size

type t = { n : int; words : int array }

let words_for n = if n = 0 then 0 else ((n - 1) / word_bits) + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (words_for n) 0 }

let capacity s = s.n

let check_range s i =
  if i < 0 || i >= s.n then
    invalid_arg
      (Printf.sprintf "Bitset: index %d out of range [0, %d)" i s.n)

let check_same a b =
  if a.n <> b.n then
    invalid_arg
      (Printf.sprintf "Bitset: capacity mismatch (%d vs %d)" a.n b.n)

let copy s = { n = s.n; words = Array.copy s.words }

let blit ~src ~dst =
  check_same src dst;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let mem s i =
  check_range s i;
  s.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let add s i =
  check_range s i;
  let w = i / word_bits in
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod word_bits))

let remove s i =
  check_range s i;
  let w = i / word_bits in
  s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod word_bits))

let clear s = Array.fill s.words 0 (Array.length s.words) 0

(* Mask of the valid bits of the last word. *)
let last_mask n =
  let r = n mod word_bits in
  if r = 0 then -1 else (1 lsl r) - 1

let fill s =
  let k = Array.length s.words in
  if k > 0 then begin
    Array.fill s.words 0 k (-1);
    s.words.(k - 1) <- s.words.(k - 1) land last_mask s.n
  end

let full n =
  let s = create n in
  fill s;
  s

let singleton n i =
  let s = create n in
  add s i;
  s

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let equal a b =
  check_same a b;
  Array.for_all2 (fun x y -> x = y) a.words b.words

let subset a b =
  check_same a b;
  Array.for_all2 (fun x y -> x land lnot y = 0) a.words b.words

let disjoint a b =
  check_same a b;
  Array.for_all2 (fun x y -> x land y = 0) a.words b.words

let inter_into ~into src =
  check_same into src;
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) land w) src.words

let union_into ~into src =
  check_same into src;
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) lor w) src.words

let diff_into ~into src =
  check_same into src;
  Array.iteri
    (fun i w -> into.words.(i) <- into.words.(i) land lnot w)
    src.words

let inter a b =
  let r = copy a in
  inter_into ~into:r b;
  r

let union a b =
  let r = copy a in
  union_into ~into:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~into:r b;
  r

(* Index of the lowest set bit of a nonzero word. *)
let lowest_bit w =
  let rec go i w = if w land 1 = 1 then i else go (i + 1) (w lsr 1) in
  go 0 w

let iter f s =
  Array.iteri
    (fun wi word ->
      let base = wi * word_bits in
      let w = ref word in
      while !w <> 0 do
        let b = lowest_bit !w in
        f (base + b);
        w := !w land lnot (1 lsl b)
      done)
    s.words

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

exception Early_exit

let for_all p s =
  try
    iter (fun i -> if not (p i) then raise Early_exit) s;
    true
  with Early_exit -> false

let exists p s = not (for_all (fun i -> not (p i)) s)

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let min_elt s =
  let rec go wi =
    if wi >= Array.length s.words then raise Not_found
    else if s.words.(wi) = 0 then go (wi + 1)
    else (wi * word_bits) + lowest_bit s.words.(wi)
  in
  go 0

let min_elt_opt s = match min_elt s with i -> Some i | exception Not_found -> None
let choose = min_elt

let compare a b =
  check_same a b;
  let rec go i =
    if i >= Array.length a.words then 0
    else
      let c = Stdlib.compare a.words.(i) b.words.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash s = Array.fold_left (fun acc w -> (acc * 31) + w) s.n s.words

let pp fmt s =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf fmt ", ";
      Format.fprintf fmt "%d" i)
    s;
  Format.fprintf fmt "}"

let to_string s = Format.asprintf "%a" pp s
