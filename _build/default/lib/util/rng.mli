(** Deterministic, splittable pseudo-random numbers (SplitMix64).

    Every stochastic component of the simulator draws from an explicit
    generator, so that any experiment is reproducible from its seed and
    independent runs can be distributed over domains without sharing state.
    [split] derives a statistically independent child generator, which is
    how per-run generators are minted from an experiment seed. *)

type t

(** [make seed] creates a generator from a 64-bit seed. *)
val make : int64 -> t

(** [of_int seed] is [make (Int64.of_int seed)]. *)
val of_int : int -> t

(** [copy g] duplicates the generator state. *)
val copy : t -> t

(** [split g] advances [g] and returns a new generator whose stream is
    independent of the remainder of [g]'s stream. *)
val split : t -> t

(** [next g] is the next raw 64-bit output. *)
val next : t -> int64

(** [int g bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in g lo hi] is uniform in [lo, hi] (inclusive). *)
val int_in : t -> int -> int -> int

(** [float g] is uniform in [0, 1). *)
val float : t -> float

(** [bool g] is a fair coin flip. *)
val bool : t -> bool

(** [chance g p] is [true] with probability [p] (clamped to [0,1]). *)
val chance : t -> float -> bool

(** [pick g arr] is a uniformly chosen element of [arr].
    @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a

(** [pick_list g xs] is a uniformly chosen element of [xs]. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle g arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation g n] is a uniformly random permutation of [0..n-1]. *)
val permutation : t -> int -> int array

(** [sample g n k] is a uniformly random [k]-subset of [0..n-1], as a sorted
    array.  @raise Invalid_argument if [k < 0 || k > n]. *)
val sample : t -> int -> int -> int array
