type row = Cells of string array | Rule

type t = { headers : string array; mutable rows : row list (* reversed *) }

let create headers = { headers = Array.of_list headers; rows = [] }

let add_row t cells =
  let k = Array.length t.headers in
  let cells = Array.of_list cells in
  let c = Array.length cells in
  if c > k then invalid_arg "Table.add_row: more cells than headers";
  let padded = Array.make k "" in
  Array.blit cells 0 padded 0 c;
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let widths t =
  let w = Array.map String.length t.headers in
  List.iter
    (function
      | Rule -> ()
      | Cells cs ->
          Array.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) cs)
    t.rows;
  w

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let pad s width =
    Buffer.add_string buf s;
    Buffer.add_string buf (String.make (width - String.length s) ' ')
  in
  let line cells =
    Array.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        pad c w.(i))
      cells;
    (* Trim trailing padding on the last column. *)
    let s = Buffer.contents buf in
    Buffer.clear buf;
    Buffer.add_string buf (String.trim s |> fun t -> if t = "" then t else t);
    Buffer.add_char buf '\n';
    let s = Buffer.contents buf in
    Buffer.clear buf;
    s
  in
  let rule () =
    let total =
      Array.fold_left ( + ) 0 w + (2 * (Array.length w - 1))
    in
    String.make (max total 1) '-' ^ "\n"
  in
  let out = Buffer.create 1024 in
  Buffer.add_string out (line t.headers);
  Buffer.add_string out (rule ());
  List.iter
    (function
      | Rule -> Buffer.add_string out (rule ())
      | Cells cs -> Buffer.add_string out (line cs))
    (List.rev t.rows);
  Buffer.contents out

let print t = print_string (render t)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf
      (String.concat "," (List.map csv_escape (Array.to_list cells)));
    Buffer.add_char buf '\n'
  in
  line t.headers;
  List.iter (function Rule -> () | Cells cs -> line cs) (List.rev t.rows);
  Buffer.contents buf

let cell_int = string_of_int
let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_bool b = if b then "yes" else "no"
