type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
  sqrt (ss /. float_of_int (Array.length xs))

let minimum xs =
  require_nonempty "Stats.minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  require_nonempty "Stats.maximum" xs;
  Array.fold_left Float.max xs.(0) xs

(* Percentile with linear interpolation, on a pre-sorted copy. *)
let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = q /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let percentile xs q =
  require_nonempty "Stats.percentile" xs;
  if q < 0.0 || q > 100.0 then invalid_arg "Stats.percentile: q out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted q

let median xs = percentile xs 50.0

let summarize xs =
  require_nonempty "Stats.summarize" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    p50 = percentile_sorted sorted 50.0;
    p95 = percentile_sorted sorted 95.0;
    p99 = percentile_sorted sorted 99.0;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least 2 points";
  let fx = mean xs and fy = mean ys in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    num := !num +. ((xs.(i) -. fx) *. (ys.(i) -. fy));
    den := !den +. ((xs.(i) -. fx) ** 2.0)
  done;
  if !den = 0.0 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = !num /. !den in
  (slope, fy -. (slope *. fx))

let of_ints xs = Array.map float_of_int xs

let histogram ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  require_nonempty "Stats.histogram" xs;
  let lo = minimum xs and hi = maximum xs in
  let width =
    if hi = lo then 1.0 else (hi -. lo) /. float_of_int buckets
  in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= buckets then buckets - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi
    (fun i c ->
      (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), c))
    counts
