lib/util/table.mli:
