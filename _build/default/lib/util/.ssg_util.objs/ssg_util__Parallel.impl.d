lib/util/parallel.ml: Array Atomic Domain
