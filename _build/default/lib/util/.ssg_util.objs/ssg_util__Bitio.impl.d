lib/util/bitio.ml: Bytes Char
