lib/util/order.ml: Array List Stdlib
