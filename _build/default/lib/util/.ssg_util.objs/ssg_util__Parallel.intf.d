lib/util/parallel.mli:
