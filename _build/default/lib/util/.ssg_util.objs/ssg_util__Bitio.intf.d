lib/util/bitio.mli: Bytes
