lib/util/rng.mli:
