lib/util/order.mli:
