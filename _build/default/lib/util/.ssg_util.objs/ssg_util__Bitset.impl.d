lib/util/bitset.ml: Array Format List Printf Stdlib Sys
