(** Descriptive statistics for experiment harnesses.

    All functions operate on [float array]s and never mutate their input.
    Empty inputs raise [Invalid_argument] unless documented otherwise. *)

(** Five-number-style summary of a sample. *)
type summary = {
  count : int;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val mean : float array -> float
val stddev : float array -> float
val minimum : float array -> float
val maximum : float array -> float

(** [percentile xs q] for [q] in [0, 100], linear interpolation between
    order statistics. *)
val percentile : float array -> float -> float

val median : float array -> float

(** [summarize xs] computes the full summary in one pass over a sorted
    copy. *)
val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit

(** [linear_fit xs ys] is [(slope, intercept)] of the least-squares line
    through the points.  Used e.g. for log-log complexity slopes.
    @raise Invalid_argument if lengths differ or fewer than 2 points. *)
val linear_fit : float array -> float array -> float * float

(** [of_ints xs] converts for convenience. *)
val of_ints : int array -> float array

(** [histogram ~buckets xs] is [(lo, hi, count) array] with equal-width
    buckets spanning [min, max].  @raise Invalid_argument if
    [buckets <= 0]. *)
val histogram : buckets:int -> float array -> (float * float * int) array
