lib/adversary/run_format.mli: Adversary
