lib/adversary/build.mli: Adversary Digraph Rng Ssg_graph Ssg_util
