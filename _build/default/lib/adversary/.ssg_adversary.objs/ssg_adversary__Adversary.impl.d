lib/adversary/adversary.ml: Array Digraph Predicate Ssg_graph Ssg_predicates Ssg_rounds Trace
