lib/adversary/build.ml: Adversary Array Bitset Digraph Gen Int64 List Printf Rng Ssg_graph Ssg_util
