lib/adversary/run_format.ml: Adversary Array Buffer Digraph Fun In_channel List Printf Ssg_graph String
