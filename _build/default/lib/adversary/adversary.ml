open Ssg_graph
open Ssg_rounds
open Ssg_predicates

type t = {
  name : string;
  order : int;
  prefix : Digraph.t array;
  stable : Digraph.t;
  recurrent : (int -> Digraph.t) option;
}

let make_opt ~recurrent ~name ~prefix ~stable =
  let order = Digraph.order stable in
  if order = 0 then invalid_arg "Adversary.make: empty system";
  let check g =
    if Digraph.order g <> order then
      invalid_arg "Adversary.make: graph order mismatch";
    if not (Digraph.has_all_self_loops g) then
      invalid_arg
        "Adversary.make: a communication graph is missing a self-loop"
  in
  check stable;
  Array.iter check prefix;
  {
    name;
    order;
    prefix = Array.map Digraph.copy prefix;
    stable = Digraph.copy stable;
    recurrent;
  }

let make ~name ~prefix ~stable = make_opt ~recurrent:None ~name ~prefix ~stable

let make_recurrent ~name ~prefix ~stable ~recurrent =
  make_opt ~recurrent:(Some recurrent) ~name ~prefix ~stable

let name adv = adv.name
let n adv = adv.order

let graph adv r =
  if r < 1 then invalid_arg "Adversary.graph: rounds start at 1";
  if r <= Array.length adv.prefix then Digraph.copy adv.prefix.(r - 1)
  else
    match adv.recurrent with
    | None -> Digraph.copy adv.stable
    | Some f ->
        let g = f r in
        if Digraph.order g <> adv.order then
          invalid_arg "Adversary.graph: recurrent graph order mismatch";
        g

let prefix_length adv = Array.length adv.prefix
let is_recurrent adv = adv.recurrent <> None

let stable_skeleton adv =
  let skel = Digraph.copy adv.stable in
  Array.iter (fun g -> Digraph.inter_into ~into:skel g) adv.prefix;
  skel

let pts adv = Predicate.of_skeleton (stable_skeleton adv)
let psrcs adv ~k = Predicate.psrcs (pts adv) ~k
let min_k adv = Predicate.min_k (pts adv)

let trace adv ~rounds = Trace.record ~n:adv.order ~rounds (graph adv)

(* +2 rather than +1: with recurrent noise the cumulative skeleton may
   stabilize one round after the prefix ends (the first noise-free round). *)
let decision_horizon adv = prefix_length adv + 2 + (2 * adv.order)
