open Ssg_util
open Ssg_graph

let noisy_prefix rng stable ~len ~noise =
  Array.init len (fun _ -> Gen.sprinkle rng stable noise)

let synchronous ~n =
  Adversary.make ~name:(Printf.sprintf "synchronous(n=%d)" n) ~prefix:[||]
    ~stable:(Digraph.complete ~self_loops:true n)

let lower_bound ~n ~k =
  if k < 1 || k >= n then
    invalid_arg "Build.lower_bound: need 1 <= k < n";
  let g = Digraph.create n in
  Digraph.add_self_loops g;
  (* Processes 0 .. k-2 form the lonely set L; process k-1 is the 2-source
     s; everyone outside L additionally hears s. *)
  let s = k - 1 in
  for q = s to n - 1 do
    Digraph.add_edge g s q
  done;
  Adversary.make
    ~name:(Printf.sprintf "lower_bound(n=%d,k=%d)" n k)
    ~prefix:[||] ~stable:g

let figure1 () =
  let n = 6 in
  let stable = Digraph.create n in
  Digraph.add_self_loops stable;
  (* Root component {p1, p2}: a 2-cycle. *)
  Digraph.add_edge stable 0 1;
  Digraph.add_edge stable 1 0;
  (* Root component {p3, p4, p5}: a 3-cycle. *)
  Digraph.add_edge stable 2 3;
  Digraph.add_edge stable 3 4;
  Digraph.add_edge stable 4 2;
  (* p6 perpetually hears p5 (and only p5, besides itself): Psrcs(3) is
     tight for this run (min_k = 3, witness {p1, p4, p6}). *)
  Digraph.add_edge stable 4 5;
  (* Two pre-stabilization rounds with transient extra edges (present in
     G^∩2, gone from G^∩∞): p6 briefly hears the other root component,
     and two transient cross edges die out.  None leaves p6, so p6's
     approximation never becomes strongly connected — matching fig. 1h. *)
  let early = Digraph.copy stable in
  Digraph.add_edge early 1 5;
  Digraph.add_edge early 0 2;
  Digraph.add_edge early 3 1;
  Adversary.make ~name:"figure1" ~prefix:[| early; Digraph.copy early |]
    ~stable

(* Random partition of 0..n-1 into exactly [blocks] nonempty parts. *)
let random_partition rng ~n ~blocks =
  if blocks < 1 || blocks > n then
    invalid_arg "Build: blocks must be in 1..n";
  let perm = Rng.permutation rng n in
  (* Choose blocks-1 cut points among the n-1 gaps. *)
  let cuts = Rng.sample rng (n - 1) (blocks - 1) in
  let parts = ref [] in
  let start = ref 0 in
  Array.iter
    (fun c ->
      parts := Array.sub perm !start (c + 1 - !start) :: !parts;
      start := c + 1)
    cuts;
  parts := Array.sub perm !start (n - !start) :: !parts;
  List.rev !parts

let block_sources rng ~n ~k ?blocks ?(intra = 0.15) ?(cross = 0.0)
    ?(prefix_len = 0) ?(noise = 0.2) () =
  let blocks = match blocks with Some b -> b | None -> min k n in
  if blocks > k then invalid_arg "Build.block_sources: blocks must be <= k";
  let parts = random_partition rng ~n ~blocks in
  let stable = Digraph.create n in
  Digraph.add_self_loops stable;
  List.iter
    (fun members ->
      let src = Rng.pick rng members in
      Array.iter
        (fun q ->
          Digraph.add_edge stable src q;
          Array.iter
            (fun q' ->
              if q <> q' && Rng.chance rng intra then
                Digraph.add_edge stable q q')
            members)
        members)
    parts;
  if cross > 0.0 then
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b && Rng.chance rng cross then Digraph.add_edge stable a b
      done
    done;
  Adversary.make
    ~name:(Printf.sprintf "block_sources(n=%d,k=%d,blocks=%d)" n k blocks)
    ~prefix:(noisy_prefix rng stable ~len:prefix_len ~noise)
    ~stable

let partitioned rng ~n ~blocks ?(extra = 0.3) ?(prefix_len = 0) ?(noise = 0.2)
    () =
  let parts = random_partition rng ~n ~blocks in
  let stable = Digraph.create n in
  Digraph.add_self_loops stable;
  List.iter
    (fun members ->
      let set = Bitset.of_list n (Array.to_list members) in
      let island = Gen.strongly_connected_on rng n set ~extra in
      Digraph.union_into ~into:stable island)
    parts;
  Adversary.make
    ~name:(Printf.sprintf "partitioned(n=%d,blocks=%d)" n blocks)
    ~prefix:(noisy_prefix rng stable ~len:prefix_len ~noise)
    ~stable

let single_root rng ~n ?root_size ?(extra = 0.1) ?(prefix_len = 0)
    ?(noise = 0.2) () =
  let root_size =
    match root_size with Some s -> s | None -> max 1 (n / 4)
  in
  if root_size < 1 || root_size > n then
    invalid_arg "Build.single_root: root_size out of range";
  let perm = Rng.permutation rng n in
  let root = Array.sub perm 0 root_size in
  let stable =
    Gen.strongly_connected_on rng n
      (Bitset.of_list n (Array.to_list root))
      ~extra
  in
  Digraph.add_self_loops stable;
  (* Attach every remaining process below an already-attached one; the
     attachment order guarantees a unique root component (see tests). *)
  for i = root_size to n - 1 do
    let parent = perm.(Rng.int rng i) in
    Digraph.add_edge stable parent perm.(i)
  done;
  (* Extra downward/random edges cannot create a second root component:
     any SCC not containing the root block keeps the incoming attachment
     edge of its earliest-attached member. *)
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && Rng.chance rng extra then Digraph.add_edge stable a b
    done
  done;
  Adversary.make
    ~name:(Printf.sprintf "single_root(n=%d,root=%d)" n root_size)
    ~prefix:(noisy_prefix rng stable ~len:prefix_len ~noise)
    ~stable

let isolated_prefix adv ~rounds =
  if rounds < 0 then invalid_arg "Build.isolated_prefix: negative rounds";
  let n = Adversary.n adv in
  let isolation = Array.init rounds (fun _ -> Gen.self_loops_only n) in
  let old_prefix =
    Array.init (Adversary.prefix_length adv) (fun i -> Adversary.graph adv (i + 1))
  in
  Adversary.make
    ~name:(Printf.sprintf "isolated(%d)+%s" rounds (Adversary.name adv))
    ~prefix:(Array.append isolation old_prefix)
    ~stable:(Adversary.graph adv (Adversary.prefix_length adv + 1))

let delayed_stability rng ~n ~k ~rst =
  if rst < 1 then invalid_arg "Build.delayed_stability: rst must be >= 1";
  let base = block_sources rng ~n ~k () in
  let stable = Adversary.graph base 1 in
  (* Persistent transient edges: in every round 1 .. rst-1, gone after.
     Force at least one so the skeleton really shrinks at round rst. *)
  let extra = Gen.sprinkle rng stable 0.3 in
  (if rst > 1 && Digraph.equal extra stable then
     let exception Done in
     try
       for a = 0 to n - 1 do
         for b = 0 to n - 1 do
           if a <> b && not (Digraph.mem_edge extra a b) then begin
             Digraph.add_edge extra a b;
             raise Done
           end
         done
       done
     with Done -> ());
  let prefix = Array.init (rst - 1) (fun _ -> Digraph.copy extra) in
  Adversary.make
    ~name:(Printf.sprintf "delayed_stability(n=%d,k=%d,rst=%d)" n k rst)
    ~prefix ~stable

let with_recurrent_noise rng adv ~noise =
  let seed = Rng.next rng in
  let plen = Adversary.prefix_length adv in
  let stable = Adversary.graph adv (plen + 1) in
  let prefix = Array.init plen (fun i -> Adversary.graph adv (i + 1)) in
  let recurrent r =
    if r mod 2 = 0 then begin
      (* Deterministic per-round generator: same run every time. *)
      let mix = Int64.mul (Int64.of_int r) 0x9E3779B97F4A7C15L in
      Gen.sprinkle (Rng.make (Int64.logxor seed mix)) stable noise
    end
    else Digraph.copy stable
  in
  Adversary.make_recurrent
    ~name:(Adversary.name adv ^ Printf.sprintf "+recnoise(%.2f)" noise)
    ~prefix ~stable ~recurrent

let crash_synchronous rng ~n ~crashes =
  List.iter
    (fun (p, r) ->
      if p < 0 || p >= n then invalid_arg "Build.crash_synchronous: bad pid";
      if r < 1 then invalid_arg "Build.crash_synchronous: rounds start at 1")
    crashes;
  let pids = List.map fst crashes in
  if List.length (List.sort_uniq compare pids) <> List.length pids then
    invalid_arg "Build.crash_synchronous: duplicate crash for a process";
  (* For each crasher, fix (once) the random subset reached in its crash
     round. *)
  let reached =
    List.map
      (fun (p, r) ->
        let subset = Bitset.create n in
        for q = 0 to n - 1 do
          if q = p || Rng.bool rng then Bitset.add subset q
        done;
        (p, r, subset))
      crashes
  in
  let graph_at round =
    let g = Digraph.complete ~self_loops:true n in
    List.iter
      (fun (p, r, subset) ->
        if round = r then
          for q = 0 to n - 1 do
            if q <> p && not (Bitset.mem subset q) then Digraph.remove_edge g p q
          done
        else if round > r then
          for q = 0 to n - 1 do
            if q <> p then Digraph.remove_edge g p q
          done)
      reached;
    g
  in
  let horizon =
    List.fold_left (fun acc (_, r) -> max acc r) 0 crashes
  in
  Adversary.make
    ~name:(Printf.sprintf "crash_sync(n=%d,f=%d)" n (List.length crashes))
    ~prefix:(Array.init horizon (fun i -> graph_at (i + 1)))
    ~stable:(graph_at (horizon + 1))

let rotating_kernel rng ~n ~extra =
  let seed = Rng.next rng in
  let recurrent r =
    let center = (r - 1) mod n in
    let star = Gen.star n ~center in
    (* Extra transient edges on even rounds only, so every non-loop edge
       is structurally guaranteed to miss infinitely many (odd) rounds —
       the stable skeleton is exactly the self-loops. *)
    if r mod 2 = 0 then
      let mix = Int64.mul (Int64.of_int r) 0x9E3779B97F4A7C15L in
      Gen.sprinkle (Rng.make (Int64.logxor seed mix)) star extra
    else star
  in
  Adversary.make_recurrent
    ~name:(Printf.sprintf "rotating_kernel(n=%d,extra=%.2f)" n extra)
    ~prefix:[| recurrent 1 |]
    ~stable:(Gen.self_loops_only n) ~recurrent

let epochs ~name parts ~final =
  List.iter
    (fun (_, len) ->
      if len < 1 then invalid_arg "Build.epochs: epoch length must be >= 1")
    parts;
  let prefix =
    Array.concat
      (List.map
         (fun (g, len) -> Array.init len (fun _ -> Digraph.copy g))
         parts)
  in
  Adversary.make ~name ~prefix ~stable:final

let arbitrary rng ~n ~density ?(prefix_len = 0) ?(noise = 0.2) () =
  let stable = Gen.gnp rng n density in
  Adversary.make
    ~name:(Printf.sprintf "arbitrary(n=%d,d=%.2f)" n density)
    ~prefix:(noisy_prefix rng stable ~len:prefix_len ~noise)
    ~stable
