(** Generators of run descriptions — the workload side of every experiment.

    Each generator documents which predicate its runs satisfy {e by
    construction}; the test suite re-checks those claims with the exact
    decision procedure of {!Ssg_predicates.Predicate}.

    Common optional parameters:
    - [prefix_len] (default 0): number of pre-stabilization rounds; each
      prefix round is the stable graph plus independent random extra edges
      (transient timeliness that dies out), so the stable skeleton is
      unchanged and the stabilization round is at most [prefix_len + 1].
    - [noise] (default 0.2): the per-edge probability of that transient
      extra timeliness. *)

open Ssg_util
open Ssg_graph

(** [synchronous ~n] — the complete graph every round: a fault-free
    synchronous system.  Satisfies [Psrcs(1)]. *)
val synchronous : n:int -> Adversary.t

(** [lower_bound ~n ~k] — the Theorem 2 run: a set [L] of [k−1] processes
    hear only themselves forever; one process [s] hears only itself; every
    other process hears exactly [{itself, s}].  Satisfies [Psrcs(k)] with
    [min_k] exactly [k], yet forces [k] distinct decision values on any
    algorithm (the members of [L ∪ {s}] never learn any other input).
    @raise Invalid_argument unless [1 <= k < n]. *)
val lower_bound : n:int -> k:int -> Adversary.t

(** [figure1 ()] — the 6-process run of the paper's Figure 1: stable root
    components [{p1, p2}] (a 2-cycle) and [{p3, p4, p5}] (a 3-cycle), [p6]
    hearing both sides, and two pre-stabilization rounds carrying extra
    transient edges (the exact transient arrows of the arXiv figure are
    not recoverable from the text; ours are chosen to match the described
    [G^∩2 ⊋ G^∩∞] shape).  Satisfies [Psrcs(3)]. *)
val figure1 : unit -> Adversary.t

(** [block_sources rng ~n ~k ...] — the pigeonhole family: the processes
    are partitioned into [blocks <= k] nonempty blocks (default [k]), each
    with a designated source heard by the whole block in every round.  Any
    [k+1] processes contain two in one block sharing that source, so
    [Psrcs(k)] holds {e by construction} — and stays true under the
    optional extra edges ([intra]-block and [cross]-block densities),
    since adding timely edges only densifies the source-sharing graph. *)
val block_sources :
  Rng.t ->
  n:int ->
  k:int ->
  ?blocks:int ->
  ?intra:float ->
  ?cross:float ->
  ?prefix_len:int ->
  ?noise:float ->
  unit ->
  Adversary.t

(** [partitioned rng ~n ~blocks ...] — [blocks] disjoint strongly
    connected components with no stable cross edges: exactly [blocks] root
    components, one agreement "island" each.  The run's [min_k] is at
    least [blocks] but can exceed it (sparse islands need not share
    sources internally); use {!Adversary.min_k} for the exact value. *)
val partitioned :
  Rng.t ->
  n:int ->
  blocks:int ->
  ?extra:float ->
  ?prefix_len:int ->
  ?noise:float ->
  unit ->
  Adversary.t

(** [single_root rng ~n ...] — one strongly connected root component of
    [root_size] processes (default [max 1 (n/4)]); every other process is
    attached below it, so the stable skeleton has exactly one root
    component and Algorithm 1 solves consensus on such runs. *)
val single_root :
  Rng.t ->
  n:int ->
  ?root_size:int ->
  ?extra:float ->
  ?prefix_len:int ->
  ?noise:float ->
  unit ->
  Adversary.t

(** [isolated_prefix adv ~rounds] — prepends [rounds] rounds in which
    every process hears {e only itself}, modelling the [♦Psrcs(k)]
    discussion of Section III: even one such round erases all perpetual
    timeliness (the stable skeleton collapses to self-loops), so the
    perpetual predicate fails although the suffix behaves perfectly. *)
val isolated_prefix : Adversary.t -> rounds:int -> Adversary.t

(** [delayed_stability rng ~n ~k ~rst] — a [block_sources]-style run whose
    skeleton stabilizes {e exactly} at round [rst]: a batch of extra edges
    is present in {e every} round up to [rst - 1] and then vanishes
    forever, so [G^∩r] strictly shrinks at round [rst].  (A merely-random
    noisy prefix does not achieve this: per-round noise intersects away
    within a couple of rounds.)  Used to measure decision latency as a
    function of [r_ST] (Lemma 11).  @raise Invalid_argument if [rst < 1]. *)
val delayed_stability : Rng.t -> n:int -> k:int -> rst:int -> Adversary.t

(** [with_recurrent_noise rng adv ~noise] — layers {e perpetual} transient
    timeliness over [adv]: every even round beyond the prefix carries
    independent extra edges (probability [noise] each) on top of the
    stable graph; odd rounds are exactly the stable graph.  The skeleton
    and all predicates are unchanged (every transient edge misses every
    odd round), but the round graphs now vary forever — the adversarial
    regime in which Line 27's restriction to timely senders is
    load-bearing (ablation experiment). *)
val with_recurrent_noise : Rng.t -> Adversary.t -> noise:float -> Adversary.t

(** [crash_synchronous rng ~n ~crashes] — the classical synchronous
    crash-fault model as a run description: all graphs are complete except
    that a process crashing in round [r] reaches only a random subset of
    the others in round [r] and nobody (besides itself) afterwards.
    [crashes] lists [(process, round)] pairs, one per process, rounds
    [>= 1].  This is FloodMin's home model. *)
val crash_synchronous : Rng.t -> n:int -> crashes:(int * int) list -> Adversary.t

(** [rotating_kernel rng ~n ~extra] — a run in which {e every} round has a
    nonempty kernel (one process heard by everyone — the round's star
    centre, which rotates each round) plus random extra edges: all
    per-round HO predicates of the no-split family hold forever, while the
    {e perpetual} skeleton collapses to self-loops (no edge survives the
    rotation).  The home ground of UniformVoting, and a sharp separation
    between per-round and perpetual predicates. *)
val rotating_kernel : Rng.t -> n:int -> extra:float -> Adversary.t

(** [epochs ~name parts ~final] — a {e dynamic-network} run: the topology
    moves through a schedule of epochs, each a graph repeated for a given
    number of rounds, and settles on [final] forever.  Partitions can
    split and heal mid-run.  The cumulative skeleton of such a run is the
    intersection of everything (usually near-empty); the meaningful
    analysis is per-window ({!Ssg_skeleton.Windowed}) or per agreement
    instance ({!Ssg_apps.Repeated}).
    @raise Invalid_argument on an empty schedule entry or order
    mismatch. *)
val epochs : name:string -> (Digraph.t * int) list -> final:Digraph.t -> Adversary.t

(** [arbitrary rng ~n ~density ...] — an unconstrained random stable
    skeleton ([G(n, density)] plus self-loops) with a noisy prefix: no
    predicate is guaranteed; used to exercise the claim that the skeleton
    approximation is correct under {e any} communication predicate. *)
val arbitrary :
  Rng.t ->
  n:int ->
  density:float ->
  ?prefix_len:int ->
  ?noise:float ->
  unit ->
  Adversary.t
