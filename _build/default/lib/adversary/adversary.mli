(** Run descriptions: finitely-represented infinite runs.

    The paper's definitions ([G^∩∞], [PT(p)], [Psrcs(k)]) quantify over
    infinitely many rounds, but every skeleton stabilizes after finitely
    many rounds (the chain (1) is antitone over a finite lattice).  An
    {e adversary} here is therefore a finite prefix of communication
    graphs followed by a single graph repeated forever.  This represents
    the run exactly: [G^∩∞ = (∩ prefix) ∩ stable], every predicate of the
    paper is decidable on it, and execution for any number of rounds is
    well defined.

    Model invariant: every communication graph contains all self-loops
    (a process always receives its own broadcast); [make] enforces it. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds

type t

(** [make ~name ~prefix ~stable] builds a run description whose rounds
    after the prefix all use [stable].
    @raise Invalid_argument if graph orders differ or any graph misses a
    self-loop. *)
val make : name:string -> prefix:Digraph.t array -> stable:Digraph.t -> t

(** [make_recurrent ~name ~prefix ~stable ~recurrent] — like [make], but
    round [r > prefix length] uses [recurrent r] instead of [stable]: runs
    whose communication graphs keep varying {e forever} while the skeleton
    is stable (perfectly admissible in the paper's model, and the only
    regime in which some ablated algorithm variants fail).  The caller
    must guarantee two properties that cannot be checked on an infinite
    object: every [recurrent r] is a supergraph of [stable], and every
    non-[stable] edge is absent from infinitely many rounds (the {!Build}
    generator places transient edges on even rounds only).  Under that
    contract [stable_skeleton] remains exact. *)
val make_recurrent :
  name:string ->
  prefix:Digraph.t array ->
  stable:Digraph.t ->
  recurrent:(int -> Digraph.t) ->
  t

val name : t -> string

(** [n adv] is the number of processes. *)
val n : t -> int

(** [graph adv r] is the communication graph of round [r >= 1]. *)
val graph : t -> int -> Digraph.t

(** [prefix_length adv] — rounds before the description becomes constant.
    The run's stabilization round [r_ST] is at most [prefix_length + 1]. *)
val prefix_length : t -> int

(** [is_recurrent adv] — the run was built with [make_recurrent] (its
    post-prefix rounds come from a function and cannot be enumerated or
    serialized). *)
val is_recurrent : t -> bool

(** [stable_skeleton adv] is the exact [G^∩∞] of the run. *)
val stable_skeleton : t -> Digraph.t

(** [pts adv] is [[| PT(0); ...; PT(n-1) |]] — the limits of the timely
    neighbourhoods. *)
val pts : t -> Bitset.t array

(** [psrcs adv ~k] decides whether the run satisfies [Psrcs(k)]. *)
val psrcs : t -> k:int -> bool

(** [min_k adv] is the least [k] with [Psrcs(k)] — the independence number
    of the run's source-sharing graph. *)
val min_k : t -> int

(** [trace adv ~rounds] materializes the first [rounds] rounds. *)
val trace : t -> rounds:int -> Trace.t

(** [decision_horizon adv] is a round count by which Algorithm 1 is
    guaranteed to have terminated on this run: [r_ST + 2n] (Lemma 11 gives
    [r + 2n − 1] for the first [r] with [G^∩r] stable for [n−1] rounds;
    with our descriptions [r <= prefix_length + 1]). *)
val decision_horizon : t -> int
