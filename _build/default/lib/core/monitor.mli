(** Executable correctness lemmas — runtime checkers for the
    approximation theory of Section IV-A.

    A monitor shadows an executing system: after each round it receives
    the round's communication graph and a view of every process's state,
    recomputes the ground truth (round skeletons [G^∩r], timely
    neighbourhoods, SCCs) and checks:

    - {b Observation 1}: [p ∈ G^r_p]; no edge label [<= r − n].
    - {b Lemma 3}: [PT_p] equals [PT(p, r)], and the label of [(q -> p)]
      in [G^r_p] is exactly [r] iff [q ∈ PT(p, r)].
    - {b Lemma 5}: for [r >= n], [G^r_p ⊇ C^r_p] (nodes and edges).
    - {b Lemma 6}: every edge [(q' --s--> q)] of [G^r_p] satisfies
      [q' ∈ PT(q, s)].
    - {b Lemma 7}: if [G^r_p] is strongly connected and [r − n + 1 >= 1],
      then [G^r_p ⊆ C^(r−n+1)_p].
    - {b Theorem 8} (at [finalize], when the final skeleton is exact):
      whenever [G^R_p] was strongly connected with [R >= n], it contains
      [C^∞_q] — nodes and edges — for every [q ∈ G^R_p].

    Violations are collected, not thrown, so failure-injection tests can
    assert that an ablated algorithm is {e detected}. *)

open Ssg_util
open Ssg_graph

(** What the monitor needs to see of a process each round. *)
type view = { pt : Bitset.t; approx : Lgraph.t }

(** [view_of_kset s] adapts an Algorithm 1 state. *)
val view_of_kset : Kset_agreement.state -> view

type t

(** [create ~n] — a monitor for an [n]-process run. *)
val create : n:int -> t

(** [observe t ~round ~graph views] — feed one completed round.  Rounds
    must be consecutive from 1. *)
val observe : t -> round:int -> graph:Digraph.t -> view array -> unit

(** [finalize ?final_skeleton_exact t] runs the end-of-run checks
    (Theorem 8 requires knowing [G^∩∞]; pass [final_skeleton_exact:true]
    — the default — only when the observed rounds extend past the run's
    stabilization) and returns all recorded violations, oldest first.
    Empty means every check passed. *)
val finalize : ?final_skeleton_exact:bool -> t -> string list

(** [violations t] — what has been recorded so far. *)
val violations : t -> string list

(** [ok t] is [violations t = []]. *)
val ok : t -> bool
