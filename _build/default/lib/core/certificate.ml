open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_skeleton

type t = {
  owner : int;
  round : int;
  value : int;
  graph : Lgraph.t;
}

let capture states ~round =
  Array.to_list states
  |> List.filter_map (fun s ->
         match
           ( Kset_agreement.decided s,
             Kset_agreement.decided_via s,
             Kset_agreement.decision_round s )
         with
         | Some value, Some `Certificate, Some r when r = round ->
             Some
               {
                 owner = Kset_agreement.self_of s;
                 round;
                 value;
                 graph = Kset_agreement.approx_of s;
               }
         | _ -> None)

type verdict = [ `Valid | `Valid_but_dissolved | `Invalid of string ]

let verify cert ~trace ~inputs =
  let n = Trace.n trace in
  let fail fmt = Printf.ksprintf (fun m -> `Invalid m) fmt in
  if cert.owner < 0 || cert.owner >= n then fail "owner out of range"
  else if cert.round < n then
    fail "decision round %d violates the r >= n guard" cert.round
  else if cert.round > Trace.rounds trace then
    fail "trace does not cover round %d" cert.round
  else if Lgraph.capacity cert.graph <> n then fail "graph capacity mismatch"
  else if not (Lgraph.mem_node cert.graph cert.owner) then
    fail "owner missing from its own certificate"
  else if not (Lgraph.is_strongly_connected cert.graph) then
    fail "certificate graph is not strongly connected"
  else if not (Array.exists (fun v -> v = cert.value) inputs) then
    fail "decided value %d was never proposed" cert.value
  else begin
    (* Observation 1 freshness and Lemma 6 soundness, edge by edge.  All
       round skeletons are materialized once (O(R·n²/w)) rather than per
       edge. *)
    let skeletons = Skeleton.all trace in
    let problem = ref None in
    Lgraph.iter_edges cert.graph (fun q' q s ->
        if !problem = None then
          if s <= cert.round - n || s < 1 || s > cert.round then
            problem :=
              Some (Printf.sprintf "stale or out-of-range label %d on %d->%d" s q' q)
          else if not (Digraph.mem_edge skeletons.(s - 1) q' q) then
            problem :=
              Some
                (Printf.sprintf "edge %d->%d was not timely through round %d"
                   q' q s));
    match !problem with
    | Some m -> `Invalid m
    | None ->
        (* The honest-but-misleading case (E9): does the certified
           component still exist in the final skeleton? *)
        let nodes = Lgraph.nodes cert.graph in
        if
          Bitset.cardinal nodes <= 1
          || Scc.is_strongly_connected ~nodes (Skeleton.final trace)
        then `Valid
        else `Valid_but_dissolved
  end
