lib/core/certificate.mli: Kset_agreement Ssg_graph Ssg_rounds Trace
