lib/core/certificate.ml: Array Bitset Digraph Kset_agreement Lgraph List Printf Scc Skeleton Ssg_graph Ssg_rounds Ssg_skeleton Ssg_util Trace
