lib/core/monitor.mli: Bitset Digraph Kset_agreement Lgraph Ssg_graph Ssg_util
