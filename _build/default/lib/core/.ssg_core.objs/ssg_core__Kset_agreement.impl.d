lib/core/kset_agreement.ml: Approx Array Codec Lgraph Option Printf Round_model Ssg_graph Ssg_rounds
