lib/core/approx.mli: Bitset Lgraph Ssg_graph Ssg_util
