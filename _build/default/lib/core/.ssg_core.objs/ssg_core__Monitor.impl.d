lib/core/monitor.ml: Array Bitset Digraph Kset_agreement Lgraph List Printf Scc Ssg_graph Ssg_skeleton Ssg_util
