lib/core/kset_agreement.mli: Bitset Lgraph Round_model Ssg_graph Ssg_rounds Ssg_util
