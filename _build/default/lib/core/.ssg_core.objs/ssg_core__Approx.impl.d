lib/core/approx.ml: Array Bitset Lgraph Printf Ssg_graph Ssg_util
