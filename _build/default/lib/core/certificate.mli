(** Verifiable decision certificates.

    Lemma 6 says every edge of an approximation graph records {e true}
    past timeliness: [(q' --s--> q) ∈ G_p] implies [q' ∈ PT(q, s)].  That
    makes a Line 28/29 decision auditable: the decider can publish its
    strongly connected [G_p] (plus round and value) as a certificate, and
    any party holding the communication trace can re-check, without
    trusting the decider, that

    - the decision round respected the [>= n] guard,
    - the published graph is strongly connected and contains the decider,
    - no label is stale ([label > round - n], Observation 1),
    - every edge was genuinely timely at its label round (Lemma 6), and
    - (given the proposals) the decided value was actually proposed.

    A forged certificate — a fabricated edge, a stale label, a value from
    nowhere — is rejected with a reason.  The stale-certificate runs of
    experiment E9 are precisely runs where an {e honest} certificate is
    misleading: it passes all of the above yet its component has already
    dissolved; [verify] therefore also reports whether the certified
    component still exists in the final skeleton ([`Valid] vs
    [`Valid_but_dissolved]), which is the external view of the Theorem 16
    gap. *)

open Ssg_rounds

type t = {
  owner : int;
  round : int;  (** the round the decision was taken in *)
  value : int;
  graph : Ssg_graph.Lgraph.t;  (** the certifying approximation graph *)
}

(** [capture states ~round] — certificates for every process that decided
    {e via Line 29} in exactly [round] (pair with an executor [on_round]
    hook).  Processes that adopted a decision message (Line 12) publish no
    certificate — their guarantee is inherited. *)
val capture : Kset_agreement.state array -> round:int -> t list

type verdict =
  [ `Valid  (** all checks pass and the component survives in G^∩∞ *)
  | `Valid_but_dissolved
    (** all checks pass, but the certified component is not strongly
        connected in the trace's final skeleton — the E9 regime *)
  | `Invalid of string ]

(** [verify cert ~trace ~inputs] audits a certificate against the ground
    truth.  [trace] must cover the decision round. *)
val verify : t -> trace:Trace.t -> inputs:int array -> verdict
