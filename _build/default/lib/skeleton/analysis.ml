open Ssg_util
open Ssg_graph

type t = {
  skeleton : Digraph.t;
  partition : Scc.partition;
  components : Bitset.t array;
  contraction : Digraph.t;
  root_ids : int list;
}

let analyze skel =
  let partition = Scc.compute skel in
  let components = Scc.component_sets skel partition in
  let contraction = Scc.condensation skel partition in
  let root_ids = ref [] in
  for c = partition.count - 1 downto 0 do
    if Digraph.in_degree contraction c = 0 then root_ids := c :: !root_ids
  done;
  { skeleton = Digraph.copy skel; partition; components; contraction;
    root_ids = !root_ids }

let skeleton t = t.skeleton
let partition t = t.partition
let components t = t.components
let component_of t p = t.components.(t.partition.comp.(p))
let contraction t = t.contraction
let roots t = List.map (fun c -> t.components.(c)) t.root_ids
let root_count t = List.length t.root_ids
let is_root t p = List.mem t.partition.comp.(p) t.root_ids
let single_root t = root_count t = 1

let root_reaching t p =
  (* Walk the condensation backward from p's component until a source is
     found; the condensation is acyclic so this terminates. *)
  let rec climb c =
    if Digraph.in_degree t.contraction c = 0 then c
    else begin
      let parent = ref c in
      Digraph.iter_preds t.contraction c (fun u ->
          if !parent = c then parent := u);
      climb !parent
    end
  in
  t.components.(climb t.partition.comp.(p))

let pp fmt t =
  Format.fprintf fmt "@[<v>%d components, %d roots:@," t.partition.count
    (root_count t);
  List.iter (fun r -> Format.fprintf fmt "  root %a@," Bitset.pp r) (roots t);
  Format.fprintf fmt "@]"
