lib/skeleton/analysis.ml: Array Bitset Digraph Format List Scc Ssg_graph Ssg_util
