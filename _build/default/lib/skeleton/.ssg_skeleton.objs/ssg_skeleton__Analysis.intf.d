lib/skeleton/analysis.mli: Bitset Digraph Format Scc Ssg_graph Ssg_util
