lib/skeleton/skeleton.ml: Array Digraph Printf Ssg_graph Ssg_rounds Trace
