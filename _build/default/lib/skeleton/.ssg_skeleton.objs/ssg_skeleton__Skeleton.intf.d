lib/skeleton/skeleton.mli: Digraph Ssg_graph Ssg_rounds Trace
