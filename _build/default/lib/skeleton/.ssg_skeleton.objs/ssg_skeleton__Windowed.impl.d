lib/skeleton/windowed.ml: Array Digraph Ssg_graph
