lib/skeleton/windowed.mli: Digraph Ssg_graph
