lib/skeleton/timely.ml: Array Digraph Skeleton Ssg_graph Ssg_rounds Trace
