open Ssg_graph

type t = {
  n : int;
  window : int;
  counts : int array; (* presence count of edge (a,b) within the window *)
  ring : Digraph.t option array; (* last [window] graphs, circular *)
  mutable absorbed : int;
}

let create ~n ~window =
  if n <= 0 then invalid_arg "Windowed.create: empty system";
  if window < 1 then invalid_arg "Windowed.create: window must be >= 1";
  {
    n;
    window;
    counts = Array.make (n * n) 0;
    ring = Array.make window None;
    absorbed = 0;
  }

let absorb t g =
  if Digraph.order g <> t.n then
    invalid_arg "Windowed.absorb: graph order mismatch";
  let slot = t.absorbed mod t.window in
  (match t.ring.(slot) with
  | Some old ->
      Digraph.iter_edges old (fun a b ->
          t.counts.((a * t.n) + b) <- t.counts.((a * t.n) + b) - 1)
  | None -> ());
  let copy = Digraph.copy g in
  Digraph.iter_edges copy (fun a b ->
      t.counts.((a * t.n) + b) <- t.counts.((a * t.n) + b) + 1);
  t.ring.(slot) <- Some copy;
  t.absorbed <- t.absorbed + 1

let rounds_absorbed t = t.absorbed
let filled t = t.absorbed >= t.window

let current t =
  if t.absorbed = 0 then Digraph.complete ~self_loops:true t.n
  else begin
    let span = min t.window t.absorbed in
    let g = Digraph.create t.n in
    for a = 0 to t.n - 1 do
      for b = 0 to t.n - 1 do
        if t.counts.((a * t.n) + b) = span then Digraph.add_edge g a b
      done
    done;
    g
  end
