(** Rolling-window skeletons — [G^∩[r-T+1, r]], the dynamic-network
    generalization of the cumulative skeleton.

    The cumulative [G^∩r] is monotone: an edge that is untimely once is
    gone forever, which is the right notion for a run converging to one
    stable skeleton.  In a {e dynamic} network whose topology moves
    through epochs (partitions split and heal), the interesting object is
    the intersection of the {b last T rounds} only: it forgets old epochs
    at rate T and tracks the current one.  (Algorithm 1's purge window
    makes its approximation behave like a [T = n] windowed skeleton,
    which is why the algorithm keeps working per agreement instance in
    {!Ssg_apps.Repeated} even across epoch changes.)

    Implementation: a per-edge presence counter over a ring buffer of the
    last [T] graphs — O(n²/w + E) per round, independent of [T]. *)

open Ssg_graph

type t

(** [create ~n ~window] — an empty accumulator ([window >= 1]). *)
val create : n:int -> window:int -> t

(** [absorb t g] pushes the next round's graph (evicting the oldest once
    more than [window] rounds have been seen). *)
val absorb : t -> Digraph.t -> unit

(** [rounds_absorbed t]. *)
val rounds_absorbed : t -> int

(** [current t] is the intersection of the last [min window rounds]
    absorbed graphs (the complete graph if none yet). *)
val current : t -> Digraph.t

(** [filled t] — at least [window] rounds have been absorbed, so
    [current] really spans a full window. *)
val filled : t -> bool
