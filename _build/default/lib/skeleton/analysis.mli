(** Structural analysis of a stable skeleton graph.

    Bundles the SCC decomposition, the contraction DAG and the root
    components of [G^∩∞] — the objects Theorems 1 and 16 reason about:
    at most [k] root components exist under [Psrcs(k)], and the (at most
    [k]) distinct decision values of Algorithm 1 correspond one-to-one to
    root components. *)

open Ssg_util
open Ssg_graph

type t

(** [analyze skel] decomposes a skeleton graph. *)
val analyze : Digraph.t -> t

val skeleton : t -> Digraph.t

(** [partition t] is the SCC partition (indices in reverse topological
    order). *)
val partition : t -> Scc.partition

(** [components t] — node set of each SCC, indexed by component id. *)
val components : t -> Bitset.t array

(** [component_of t p] is the node set [C_p] of [p]'s SCC. *)
val component_of : t -> int -> Bitset.t

(** [contraction t] is the condensation DAG over component ids. *)
val contraction : t -> Digraph.t

(** [roots t] — the root components, as node sets. *)
val roots : t -> Bitset.t list

val root_count : t -> int

(** [is_root t p] — [p] belongs to a root component. *)
val is_root : t -> int -> bool

(** [single_root t] — there is exactly one root component ("sufficiently
    well-behaved" runs in which Algorithm 1 solves consensus). *)
val single_root : t -> bool

(** [root_reaching t p] is a root component from which [p] is reachable.
    Always exists: every node of a finite digraph is reachable from a
    source SCC of the condensation. *)
val root_reaching : t -> int -> Bitset.t

val pp : Format.formatter -> t -> unit
