open Ssg_graph
open Ssg_rounds

let of_skeleton skel p = Digraph.preds skel p
let at trace ~p ~r = of_skeleton (Skeleton.at trace r) p
let final trace p = of_skeleton (Skeleton.final trace) p

let all_final trace =
  let skel = Skeleton.final trace in
  Array.init (Trace.n trace) (of_skeleton skel)

let sources_of skel =
  Array.init (Digraph.order skel) (of_skeleton skel)
