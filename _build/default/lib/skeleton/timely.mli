(** Timely neighbourhoods [PT(p, r)] and [PT(p)].

    [PT(p, r)] is the set of processes [p] has perceived as perpetually
    timely up to round [r]: exactly the predecessors of [p] in the round
    skeleton [G^∩r].  [PT(p) = ∩_r PT(p, r)] is its limit, read off the
    stable skeleton. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds

(** [of_skeleton skel p] is the timely neighbourhood encoded by a skeleton
    graph: [{q | (q -> p) ∈ skel}]. *)
val of_skeleton : Digraph.t -> int -> Bitset.t

(** [at trace ~p ~r] is [PT(p, r)]. *)
val at : Trace.t -> p:int -> r:int -> Bitset.t

(** [final trace p] is [PT(p)] as determined by the whole trace (exact for
    traces extending past stabilization). *)
val final : Trace.t -> int -> Bitset.t

(** [all_final trace] is [[| PT(0); ...; PT(n-1) |]]. *)
val all_final : Trace.t -> Bitset.t array

(** [sources_of skel] is, for each process [q], the set [PT(q)] — the
    "source" relation the predicate [Psrc] quantifies over.  Identical to
    mapping [of_skeleton] but documents intent. *)
val sources_of : Digraph.t -> Bitset.t array
