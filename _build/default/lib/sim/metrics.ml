open Ssg_rounds
open Ssg_skeleton

let distinct_decisions o = List.length (Executor.decision_values o)

let first_decision_round (o : Executor.outcome) =
  Array.fold_left
    (fun acc d ->
      match (acc, d) with
      | None, Some (d : Executor.decision) -> Some d.round
      | Some r, Some d -> Some (min r d.round)
      | acc, None -> acc)
    None o.decisions

let last_decision_round = Executor.last_decision_round

let k_agreement ~k o = distinct_decisions o <= k

let validity ~inputs o =
  let proposed = Array.to_list inputs in
  List.for_all (fun v -> List.mem v proposed) (Executor.decision_values o)

let termination = Executor.all_decided

let decisions_per_root (r : Runner.report) =
  (distinct_decisions r.outcome, Analysis.root_count r.analysis)

type verdict = {
  agreement : bool;
  validity : bool;
  termination : bool;
  monitors_clean : bool;
}

let verdict ~k (r : Runner.report) =
  {
    agreement = k_agreement ~k r.outcome;
    validity = validity ~inputs:r.inputs r.outcome;
    termination = termination r.outcome;
    monitors_clean = r.violations = [];
  }

let all_ok v = v.agreement && v.validity && v.termination && v.monitors_clean

let count_if f rs = List.length (List.filter f rs)

let max_over f = function
  | [] -> invalid_arg "Metrics.max_over: empty batch"
  | r :: rs -> List.fold_left (fun acc r -> max acc (f r)) (f r) rs

let mean_over f = function
  | [] -> invalid_arg "Metrics.mean_over: empty batch"
  | rs ->
      let total = List.fold_left (fun acc r -> acc + f r) 0 rs in
      float_of_int total /. float_of_int (List.length rs)
