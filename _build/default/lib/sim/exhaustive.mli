(** Exhaustive model checking on tiny systems.

    For small [n] the space of run descriptions is enumerable: a stable
    graph is any digraph with all self-loops ([2^(n(n-1))] of them), and a
    run is a stable graph plus a (short) prefix of such graphs.  Checking
    Algorithm 1 against {e every} such run gives proof-grade evidence that
    random sweeps cannot: for [n = 3] we cover the entire space of runs
    with prefixes of length ≤ 1 (and the diagonal ones of length 2), and
    for [n = 4] every prefix-free run.

    This is how the Theorem 16 gap (experiment E9) is pinned down
    exactly: the checker reports every run on which the paper's decision
    rule exceeds [min_k], along with the smallest counterexample found. *)

open Ssg_graph
open Ssg_adversary

(** [all_stable_graphs ~n] enumerates every digraph on [n] nodes that
    contains all self-loops, in mask order.
    @raise Invalid_argument if [n] makes the count exceed [2^20]. *)
val all_stable_graphs : n:int -> Digraph.t list

(** Aggregate verdict of a check sweep. *)
type verdict = {
  runs : int;
  theorem1_failures : int;  (** runs with more than [min_k] root components *)
  agreement_failures : int;
      (** paper rule ([r >= n] reading): runs deciding more than [min_k] *)
  strict_agreement_failures : int;
      (** strict-guard reading ([r > n]): runs deciding more than [min_k] *)
  validity_failures : int;
  termination_failures : int;
  repaired_agreement_failures : int;
      (** [confirm_rounds = n] rule: runs deciding more than [min_k] *)
  repaired_termination_failures : int;
  counterexample : Adversary.t option;
      (** a smallest-[n], first-found run violating the paper rule *)
}

(** [check ~n ~prefixes] runs every (prefix, stable) combination where
    [stable] ranges over all self-looped digraphs and the prefix over
    [prefixes] (a list of prefix templates; [[]] means prefix-free only).
    Each prefix template is a list of graphs prepended to the run. *)
val check : n:int -> prefixes:Digraph.t list list -> verdict

(** [check_prefix_free ~n] — all [2^(n(n-1))] prefix-free runs (skeleton
    stable from round 1): the regime where Theorem 16's proof is sound,
    so any failure here would be an implementation bug. *)
val check_prefix_free : n:int -> verdict

(** [check_with_one_round_prefixes ~n] — every stable graph combined with
    {e every} 1-round prefix: [2^(2·n(n-1))] runs.  Feasible for [n = 3]
    (4096 runs); this sweep contains the smallest Theorem 16
    counterexamples. *)
val check_with_one_round_prefixes : n:int -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
