open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_adversary
open Ssg_core

type report = {
  adversary : string;
  algorithm : string;
  n : int;
  inputs : int array;
  outcome : Executor.outcome;
  skeleton : Digraph.t;
  analysis : Analysis.t;
  min_k : int;
  violations : string list;
}

let distinct_inputs n = Array.init n (fun p -> p)
let shuffled_inputs rng n = Rng.permutation rng n
let default_rounds adv = Adversary.decision_horizon adv

let describe adv name inputs outcome violations =
  let skeleton = Adversary.stable_skeleton adv in
  {
    adversary = Adversary.name adv;
    algorithm = name;
    n = Adversary.n adv;
    inputs;
    outcome;
    skeleton;
    analysis = Analysis.analyze skeleton;
    min_k = Adversary.min_k adv;
    violations;
  }

let run_kset ?variant ?inputs ?rounds ?(monitor = false) adv =
  let (module A : Round_model.ALGORITHM
        with type state = Kset_agreement.state) =
    match variant with
    | Some m -> m
    | None -> (module Kset_agreement.Alg)
  in
  let n = Adversary.n adv in
  let inputs = match inputs with Some i -> i | None -> distinct_inputs n in
  let rounds = match rounds with Some r -> r | None -> default_rounds adv in
  let module E = Executor.Make (A) in
  let mon = if monitor then Some (Monitor.create ~n) else None in
  let on_round =
    Option.map
      (fun m ~round ~graph states ->
        Monitor.observe m ~round ~graph (Array.map Monitor.view_of_kset states))
      mon
  in
  let cfg =
    E.config ?on_round
      ~stop_when_all_decided:(not monitor)
      ~inputs ~graphs:(Adversary.graph adv) ~max_rounds:rounds ()
  in
  let outcome, _states = E.run cfg in
  let violations =
    match mon with
    | None -> []
    | Some m ->
        let exact = outcome.Executor.rounds_run > Adversary.prefix_length adv in
        Monitor.finalize ~final_skeleton_exact:exact m
  in
  describe adv A.name inputs outcome violations

let run_packed alg ?inputs ?rounds adv =
  let n = Adversary.n adv in
  let inputs = match inputs with Some i -> i | None -> distinct_inputs n in
  let rounds = match rounds with Some r -> r | None -> default_rounds adv in
  let outcome =
    Executor.run_packed alg ~inputs ~graphs:(Adversary.graph adv)
      ~max_rounds:rounds
  in
  describe adv (Round_model.name_of alg) inputs outcome []
