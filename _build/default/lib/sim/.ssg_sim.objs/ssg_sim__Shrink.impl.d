lib/sim/shrink.ml: Adversary Array Digraph List Ssg_adversary Ssg_graph
