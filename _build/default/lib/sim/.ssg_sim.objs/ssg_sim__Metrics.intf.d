lib/sim/metrics.mli: Executor Runner Ssg_rounds
