lib/sim/series.mli: Adversary Ssg_adversary
