lib/sim/render.ml: Adversary Array Buffer Digraph Executor Kset_agreement Lgraph Printf Ssg_adversary Ssg_core Ssg_graph Ssg_rounds String
