lib/sim/shrink.mli: Adversary Ssg_adversary
