lib/sim/metrics.ml: Analysis Array Executor List Runner Ssg_rounds Ssg_skeleton
