lib/sim/exhaustive.ml: Adversary Analysis Array Digraph Format Gen Kset_agreement List Metrics Parallel Runner Ssg_adversary Ssg_core Ssg_graph Ssg_skeleton Ssg_util
