lib/sim/runner.ml: Adversary Analysis Array Digraph Executor Kset_agreement Monitor Option Rng Round_model Ssg_adversary Ssg_core Ssg_graph Ssg_rounds Ssg_skeleton Ssg_util
