lib/sim/exhaustive.mli: Adversary Digraph Format Ssg_adversary Ssg_graph
