lib/sim/render.mli: Adversary Digraph Executor Ssg_adversary Ssg_graph Ssg_rounds
