lib/sim/experiment.mli: Ssg_util Table
