lib/sim/series.ml: Adversary Analysis Array Buffer Digraph Executor Kset_agreement Lgraph List Printf Scc Skeleton Ssg_adversary Ssg_core Ssg_graph Ssg_rounds Ssg_skeleton Ssg_util String
