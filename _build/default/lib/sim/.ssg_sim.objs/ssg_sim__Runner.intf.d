lib/sim/runner.mli: Adversary Analysis Digraph Executor Round_model Ssg_adversary Ssg_core Ssg_graph Ssg_rounds Ssg_skeleton Ssg_util
