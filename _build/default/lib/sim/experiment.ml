open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_adversary
open Ssg_core

type scale = [ `Quick | `Standard | `Full ]

type result = {
  id : string;
  title : string;
  table : Table.t;
  notes : string list;
}

type t = {
  id : string;
  title : string;
  paper_artifact : string;
  run : scale -> result;
}

let master_seed = 0x5EED_2011

(* Independent generator for run [i] of experiment [id]. *)
let rng_for id i =
  let h = Hashtbl.hash (id, i) in
  Rng.make (Int64.of_int ((master_seed * 1_000_003) + h))

let runs_at scale ~quick ~standard ~full =
  match scale with `Quick -> quick | `Standard -> standard | `Full -> full

let pct num den =
  if den = 0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int num /. float_of_int den)

(* ------------------------------------------------------------------ *)
(* F1 — Figure 1: the worked 6-process example.                        *)
(* ------------------------------------------------------------------ *)

let edge_string (q, p, l) = Printf.sprintf "p%d-[%d]->p%d" (q + 1) l (p + 1)

let run_f1 _scale =
  let adv = Build.figure1 () in
  let n = Adversary.n adv in
  let module E = Executor.Make (Kset_agreement.Alg) in
  let table = Table.create [ "round"; "PT(p6)"; "|V|"; "G^r_p6 edges (no self-loops)"; "SC?" ] in
  let capture ~round ~graph:_ states =
    if round <= n then begin
      let s = states.(5) in
      let g = Kset_agreement.approx_of s in
      let pt = Kset_agreement.pt_of s in
      let pt_names =
        Bitset.elements pt
        |> List.map (fun i -> Printf.sprintf "p%d" (i + 1))
        |> String.concat ","
      in
      let edges =
        List.filter (fun (q, p, _) -> q <> p) (Lgraph.edges g)
        |> List.map edge_string |> String.concat " "
      in
      Table.add_row table
        [
          string_of_int round;
          "{" ^ pt_names ^ "}";
          string_of_int (Lgraph.node_count g);
          edges;
          Table.cell_bool (Lgraph.is_strongly_connected g);
        ]
    end
  in
  let cfg =
    E.config ~on_round:capture ~stop_when_all_decided:false
      ~inputs:(Array.init n (fun i -> i))
      ~graphs:(Adversary.graph adv)
      ~max_rounds:(Adversary.decision_horizon adv) ()
  in
  let outcome, _ = E.run cfg in
  let skel_run = Adversary.stable_skeleton adv in
  let trace = Adversary.trace adv ~rounds:6 in
  let skel2 = Skeleton.at trace 2 in
  let fmt_graph g =
    Digraph.edges g
    |> List.filter (fun (p, q) -> p <> q)
    |> List.map (fun (p, q) -> Printf.sprintf "p%d->p%d" (p + 1) (q + 1))
    |> String.concat " "
  in
  let decisions =
    Array.to_list outcome.Executor.decisions
    |> List.mapi (fun p d ->
           match d with
           | Some { Executor.round; value } ->
               Printf.sprintf "p%d decides %d @r%d" (p + 1) value round
           | None -> Printf.sprintf "p%d undecided" (p + 1))
    |> String.concat ", "
  in
  {
    id = "F1";
    title = "Figure 1 — skeleton approximation at p6 (n = 6, Psrcs(3))";
    table;
    notes =
      [
        Printf.sprintf "G^∩2  (fig. 1a): %s" (fmt_graph skel2);
        Printf.sprintf "G^∩∞ (fig. 1b): %s" (fmt_graph skel_run);
        Printf.sprintf "root components: {p1,p2} and {p3,p4,p5}; Psrcs(3) holds (min_k = %d)"
          (Adversary.min_k adv);
        "p6's approximation accumulates round-labelled edges (1c-1h); labels";
        "are the rounds at which the edge was last observed timely.";
        decisions;
      ];
  }

(* ------------------------------------------------------------------ *)
(* F2 — supplementary figure: convergence dynamics at scale.           *)
(* ------------------------------------------------------------------ *)

let run_f2 scale =
  let n = match scale with `Quick -> 10 | `Standard -> 16 | `Full -> 32 in
  let rng = rng_for "F2" 0 in
  let adv = Build.block_sources rng ~n ~k:3 ~prefix_len:4 ~noise:0.4 () in
  let samples = Series.collect adv in
  let table =
    Table.create
      [ "round"; "skel edges"; "comps"; "roots"; "mean |PT|";
        "mean |V(Gp)|"; "mean |E(Gp)|"; "certs"; "decided" ]
  in
  let show (s : Series.sample) =
    Table.add_row table
      [
        string_of_int s.Series.round;
        string_of_int s.Series.skeleton_edges;
        string_of_int s.Series.components;
        string_of_int s.Series.roots;
        Table.cell_float s.Series.mean_pt;
        Table.cell_float s.Series.mean_approx_nodes;
        Table.cell_float s.Series.mean_approx_edges;
        string_of_int s.Series.certificates;
        string_of_int s.Series.decided;
      ]
  in
  let total = List.length samples in
  List.iteri
    (fun i s ->
      (* print the early rounds densely, then every 4th *)
      if i < 8 || i mod 4 = 3 || i = total - 1 then show s)
    samples;
  {
    id = "F2";
    title =
      Printf.sprintf
        "Supplementary figure — convergence dynamics (n = %d, Psrcs(3), noisy prefix)"
        n;
    table;
    notes =
      ("sparklines over all rounds:" :: String.split_on_char '\n' (Series.summary samples))
      @ [
          "The ground-truth skeleton shrinks to its fixpoint while every";
          "local approximation G_p grows to cover its component (Lemma 5)";
          "and sheds stale edges (Line 24/25); certificates open at round";
          ">= n and decisions follow — Figure 1's mechanism at scale.";
        ];
  }

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 1: at most k root components under Psrcs(k).           *)
(* ------------------------------------------------------------------ *)

let run_e1 scale =
  let runs = runs_at scale ~quick:8 ~standard:60 ~full:300 in
  let table =
    Table.create [ "n"; "k"; "runs"; "max roots"; "mean roots"; "bound k holds" ]
  in
  let cells =
    List.concat_map
      (fun n -> List.filter_map (fun k -> if k < n then Some (n, k) else None) [ 1; 2; 4; 8 ])
      [ 8; 16; 32 ]
  in
  List.iter
    (fun (n, k) ->
      let roots =
        Parallel.init runs (fun i ->
            let rng = rng_for (Printf.sprintf "E1-%d-%d" n k) i in
            let adv =
              Build.block_sources rng ~n ~k
                ~blocks:(1 + Rng.int rng k)
                ~prefix_len:(Rng.int rng 5)
                ~cross:(if Rng.bool rng then 0.05 else 0.0)
                ()
            in
            assert (Adversary.psrcs adv ~k);
            Analysis.root_count (Analysis.analyze (Adversary.stable_skeleton adv)))
      in
      let max_roots = Array.fold_left max 0 roots in
      let mean =
        float_of_int (Array.fold_left ( + ) 0 roots) /. float_of_int runs
      in
      Table.add_row table
        [
          string_of_int n;
          string_of_int k;
          string_of_int runs;
          string_of_int max_roots;
          Table.cell_float mean;
          Table.cell_bool (max_roots <= k);
        ])
    cells;
  {
    id = "E1";
    title = "Theorem 1 — root components of G^∩∞ never exceed k";
    table;
    notes =
      [
        "Every run satisfies Psrcs(k) by construction (machine-checked via";
        "the MIS decision procedure); the bound is tight: cells with";
        "blocks = k regularly reach max roots = k.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 2: Psrcs(k) is too weak for (k-1)-set agreement.       *)
(* ------------------------------------------------------------------ *)

let run_e2 scale =
  let table =
    Table.create
      [ "n"; "k"; "Psrcs(k)"; "Psrcs(k-1)"; "min_k"; "distinct decisions"; "= k" ]
  in
  let cells =
    match scale with
    | `Quick -> [ (6, 3); (8, 4) ]
    | `Standard -> [ (4, 2); (6, 3); (8, 4); (12, 6); (16, 8); (24, 12) ]
    | `Full -> [ (4, 2); (6, 3); (8, 4); (12, 6); (16, 8); (24, 12); (32, 16); (48, 24) ]
  in
  List.iter
    (fun (n, k) ->
      let adv = Build.lower_bound ~n ~k in
      let r = Runner.run_kset adv in
      let distinct = Metrics.distinct_decisions r.Runner.outcome in
      Table.add_row table
        [
          string_of_int n;
          string_of_int k;
          Table.cell_bool (Adversary.psrcs adv ~k);
          (if k > 1 then Table.cell_bool (Adversary.psrcs adv ~k:(k - 1)) else "n/a");
          string_of_int r.Runner.min_k;
          string_of_int distinct;
          Table.cell_bool (distinct = k);
        ])
    cells;
  {
    id = "E2";
    title = "Theorem 2 — the lower-bound run forces exactly k values";
    table;
    notes =
      [
        "The k-1 lonely processes and the 2-source s can never learn any";
        "other input, so every algorithm decides >= k values on this run";
        "although Psrcs(k) holds — (k-1)-set agreement is impossible.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 16: agreement/validity/termination across the zoo.     *)
(* ------------------------------------------------------------------ *)

let zoo rng n =
  match Rng.int rng 6 with
  | 0 ->
      Build.block_sources rng ~n ~k:(1 + Rng.int rng (n - 1))
        ~prefix_len:(Rng.int rng 5) ~noise:(Rng.float rng *. 0.5) ()
  | 1 -> Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ~prefix_len:(Rng.int rng 4) ()
  | 2 -> Build.single_root rng ~n ~prefix_len:(Rng.int rng 4) ()
  | 3 ->
      Build.arbitrary rng ~n
        ~density:(0.1 +. (Rng.float rng *. 0.4))
        ~prefix_len:(Rng.int rng 5) ~noise:0.4 ()
  | 4 -> Build.lower_bound ~n ~k:(1 + Rng.int rng (n - 1))
  | _ ->
      Build.with_recurrent_noise rng
        (Build.partitioned rng ~n ~blocks:(1 + Rng.int rng 3) ())
        ~noise:(Rng.float rng *. 0.3)

let run_e3 scale =
  let runs = runs_at scale ~quick:10 ~standard:120 ~full:600 in
  let table =
    Table.create
      [ "n"; "runs"; "k-agreement@min_k"; "validity"; "termination"; "monitors clean" ]
  in
  List.iter
    (fun n ->
      let monitored = n <= 12 in
      let verdicts =
        Parallel.init runs (fun i ->
            let rng = rng_for (Printf.sprintf "E3-%d" n) i in
            let adv = zoo rng n in
            let r = Runner.run_kset ~monitor:monitored adv in
            Metrics.verdict ~k:r.Runner.min_k r)
      in
      let count f = Array.fold_left (fun a v -> if f v then a + 1 else a) 0 verdicts in
      Table.add_row table
        [
          string_of_int n;
          string_of_int runs;
          pct (count (fun v -> v.Metrics.agreement)) runs;
          pct (count (fun v -> v.Metrics.validity)) runs;
          pct (count (fun v -> v.Metrics.termination)) runs;
          (if monitored then pct (count (fun v -> v.Metrics.monitors_clean)) runs
           else "(n>12: off)");
        ])
    [ 6; 9; 12; 16 ];
  {
    id = "E3";
    title = "Theorem 16 — k-set agreement across the adversary zoo";
    table;
    notes =
      [
        "k is the run's exact min_k = α(source-sharing graph).  Monitors";
        "are the executable Lemmas 3-7 and Theorem 8 — the approximation is";
        "correct under every predicate (Section V), not just Psrcs(k).";
        "Agreement below 100% is NOT a bug of this implementation: it is a";
        "reproducible counterexample to Theorem 16 as stated — see E9.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E4 — Lemma 11: decision latency vs the r_ST + 2n - 1 bound.         *)
(* ------------------------------------------------------------------ *)

let run_e4 scale =
  let runs = runs_at scale ~quick:5 ~standard:40 ~full:200 in
  let table =
    Table.create
      [ "n"; "r_ST"; "runs"; "mean last dec"; "max last dec"; "bound"; "within" ]
  in
  let cells =
    List.concat_map
      (fun n -> List.map (fun rst -> (n, rst)) [ 1; n / 2; n; 2 * n ])
      [ 8; 16; 32 ]
  in
  List.iter
    (fun (n, rst) ->
      let lasts =
        Parallel.init runs (fun i ->
            let rng = rng_for (Printf.sprintf "E4-%d-%d" n rst) i in
            let adv =
              Build.delayed_stability rng ~n ~k:(1 + Rng.int rng 3) ~rst
            in
            let r = Runner.run_kset adv in
            match Metrics.last_decision_round r.Runner.outcome with
            | Some l -> l
            | None -> max_int)
      in
      let bound = rst + (2 * n) - 1 in
      let max_last = Array.fold_left max 0 lasts in
      let mean =
        float_of_int (Array.fold_left ( + ) 0 lasts) /. float_of_int runs
      in
      Table.add_row table
        [
          string_of_int n;
          string_of_int rst;
          string_of_int runs;
          Table.cell_float mean;
          string_of_int max_last;
          string_of_int bound;
          Table.cell_bool (max_last <= bound);
        ])
    cells;
  {
    id = "E4";
    title = "Lemma 11 — all processes decide by r_ST + 2n - 1";
    table;
    notes =
      [
        "r_ST is forced exactly: a batch of extra edges is timely in every";
        "round up to r_ST - 1 and then vanishes, so the skeleton stabilizes";
        "at r_ST.  The bound holds in every run, and measured latency is";
        "~n..2n nearly independently of r_ST — Line 28 may legitimately";
        "certify on the pre-stabilization skeleton (whose root components";
        "are stable-so-far), so decisions need not wait for r_ST at all.";
        "The r_ST + 2n - 1 worst case is loose for these workloads.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E5 — Section V: message bit complexity is polynomial in n.          *)
(* ------------------------------------------------------------------ *)

let run_e5 scale =
  let sizes =
    match scale with
    | `Quick -> [ 8; 16 ]
    | `Standard -> [ 8; 12; 16; 24; 32; 48 ]
    | `Full -> [ 8; 12; 16; 24; 32; 48; 64; 96 ]
  in
  let table =
    Table.create
      [ "n"; "max msg bits"; "n^2*log2(n)"; "ratio"; "total bits (run)"; "rounds" ]
  in
  let points =
    List.map
      (fun n ->
        let rng = rng_for "E5" n in
        let adv = Build.block_sources rng ~n ~k:(max 1 (n / 4)) ~intra:0.3 () in
        let r = Runner.run_kset adv in
        let o = r.Runner.outcome in
        let reference =
          float_of_int (n * n) *. (log (float_of_int n) /. log 2.0)
        in
        Table.add_row table
          [
            string_of_int n;
            string_of_int o.Executor.max_message_bits;
            Printf.sprintf "%.0f" reference;
            Table.cell_float (float_of_int o.Executor.max_message_bits /. reference);
            string_of_int o.Executor.bits_sent;
            string_of_int o.Executor.rounds_run;
          ];
        (log (float_of_int n), log (float_of_int o.Executor.max_message_bits)))
      sizes
  in
  let xs = Array.of_list (List.map fst points)
  and ys = Array.of_list (List.map snd points) in
  let slope, _ = Stats.linear_fit xs ys in
  {
    id = "E5";
    title = "Section V — worst-case message size is polynomial in n";
    table;
    notes =
      [
        Printf.sprintf
          "log-log slope of max message bits vs n: %.2f (graph payload is" slope;
        "Θ(E·log n) = O(n² log n) bits; no exponential blow-up).  Compare";
        "FloodMin's constant 32-bit messages in E6 — the price of running";
        "without a known failure bound.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E6 — baselines: FloodMin in and outside its model.                  *)
(* ------------------------------------------------------------------ *)

let run_e6 scale =
  let runs = runs_at scale ~quick:5 ~standard:30 ~full:150 in
  let table =
    Table.create
      [ "scenario"; "algorithm"; "k budget"; "runs"; "ok"; "mean last dec"; "max msg bits" ]
  in
  let n = 12 in
  (* Part A: the crash-synchronous home model of FloodMin. *)
  List.iter
    (fun (f, k) ->
      let row alg_name make_alg check_k =
        let oks = ref 0 and lasts = ref 0 and bits = ref 0 in
        let stalled = ref false in
        for i = 0 to runs - 1 do
          let rng = rng_for (Printf.sprintf "E6-%d-%d-%s" f k alg_name) i in
          let crashed = Rng.sample rng n f in
          let crashes =
            Array.to_list (Array.map (fun p -> (p, 1 + Rng.int rng 3)) crashed)
          in
          let adv = Build.crash_synchronous rng ~n ~crashes in
          let r =
            match make_alg with
            | `Floodmin ->
                let rounds = Ssg_baselines.Floodmin.rounds_for ~f ~k in
                Runner.run_packed (Ssg_baselines.Floodmin.make ~rounds) ~rounds adv
            | `Otr ->
                Runner.run_packed Ssg_baselines.One_third_rule.packed
                  ~rounds:(2 * n) adv
            | `Kset -> Runner.run_kset adv
          in
          let o = r.Runner.outcome in
          if Metrics.termination o && Metrics.k_agreement ~k:check_k o then incr oks;
          (match Metrics.last_decision_round o with
          | Some l when Metrics.termination o -> lasts := !lasts + l
          | _ -> stalled := true);
          bits := max !bits o.Executor.max_message_bits
        done;
        Table.add_row table
          [
            Printf.sprintf "crash-sync f=%d" f;
            alg_name;
            string_of_int k;
            string_of_int runs;
            pct !oks runs;
            (if !stalled then "-"
             else Table.cell_float (float_of_int !lasts /. float_of_int runs));
            string_of_int !bits;
          ]
      in
      row "floodmin" `Floodmin k;
      (* OTR is live here only while f < n/3 (needs > 2n/3 arrivals). *)
      row "one-third-rule" `Otr 1;
      (* Algorithm 1 solves consensus here (min_k = 1 <= k). *)
      row "skeleton-kset" `Kset k)
    [ (2, 1); (4, 2); (8, 4) ];
  Table.add_rule table;
  (* Part B: outside FloodMin's model — a partitioned Psrcs run. *)
  let oks_fm = ref 0 and oks_ks = ref 0 in
  let otr_safe = ref 0 and otr_live = ref 0 in
  let blocks = 3 in
  for i = 0 to runs - 1 do
    let rng = rng_for "E6-B" i in
    let adv = Build.partitioned rng ~n ~blocks () in
    let fm =
      Runner.run_packed (Ssg_baselines.Floodmin.make ~rounds:4) ~rounds:4 adv
    in
    if Metrics.k_agreement ~k:1 fm.Runner.outcome then incr oks_fm;
    let otr =
      Runner.run_packed Ssg_baselines.One_third_rule.packed ~rounds:(3 * n) adv
    in
    if Metrics.k_agreement ~k:1 otr.Runner.outcome then incr otr_safe;
    if Metrics.termination otr.Runner.outcome then incr otr_live;
    let ks = Runner.run_kset adv in
    if Metrics.k_agreement ~k:ks.Runner.min_k ks.Runner.outcome then incr oks_ks
  done;
  Table.add_row table
    [ Printf.sprintf "partitioned(%d)" blocks; "floodmin"; "1"; string_of_int runs;
      pct !oks_fm runs; "-"; "32" ];
  Table.add_row table
    [ Printf.sprintf "partitioned(%d)" blocks; "one-third-rule"; "1";
      string_of_int runs;
      Printf.sprintf "%s safe / %s live" (pct !otr_safe runs) (pct !otr_live runs);
      "-"; "32" ];
  Table.add_row table
    [ Printf.sprintf "partitioned(%d)" blocks; "skeleton-kset"; "min_k";
      string_of_int runs; pct !oks_ks runs; "-"; "-" ];
  {
    id = "E6";
    title = "Baselines — FloodMin vs Algorithm 1, inside and outside the crash model";
    table;
    notes =
      [
        "Three corners of the design space.  FloodMin: fastest (⌊f/k⌋+1";
        "rounds, 32-bit messages) but only sound inside the crash model —";
        "on partitions its fixed horizon violates agreement in every run.";
        "One-Third-Rule (HO model, ref. [4]): safe under every pattern but";
        "live only when > 2n/3 arrivals occur — it stalls on partitions and";
        "already at f >= n/3 crashes ('ok' above counts termination too).";
        "Algorithm 1: terminates in every run, bounds disagreement by the";
        "run's own min_k, pays Θ(n) rounds and O(n² log n)-bit messages.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E7 — Section III: the eventual predicate ♦Psrcs(k) is too weak.     *)
(* ------------------------------------------------------------------ *)

let run_e7 scale =
  let runs = runs_at scale ~quick:5 ~standard:30 ~full:100 in
  let n = 8 in
  let table =
    Table.create
      [ "isolation L"; "runs"; "min_k after L"; "kset distinct (max)"; "naive(H=n) distinct (max)" ]
  in
  List.iter
    (fun isolation ->
      let kset_max = ref 0 and naive_max = ref 0 and mink = ref 0 in
      for i = 0 to runs - 1 do
        let rng = rng_for (Printf.sprintf "E7-%d" isolation) i in
        let base = Build.block_sources rng ~n ~k:2 () in
        let adv =
          if isolation = 0 then base else Build.isolated_prefix base ~rounds:isolation
        in
        mink := max !mink (Adversary.min_k adv);
        let r = Runner.run_kset adv in
        kset_max := max !kset_max (Metrics.distinct_decisions r.Runner.outcome);
        let nv =
          Runner.run_packed (Ssg_baselines.Naive_min.make ~horizon:n)
            ~rounds:(n + isolation + 2) adv
        in
        naive_max := max !naive_max (Metrics.distinct_decisions nv.Runner.outcome)
      done;
      Table.add_row table
        [
          string_of_int isolation;
          string_of_int runs;
          string_of_int !mink;
          string_of_int !kset_max;
          string_of_int !naive_max;
        ])
    [ 0; 1; 2; 4 ];
  {
    id = "E7";
    title = "♦Psrcs(k) is too weak — one isolated round erases perpetual timeliness";
    table;
    notes =
      [
        "With L = 0 the perpetual predicate holds and Algorithm 1 stays";
        "within k = 2 (the naive fixed-horizon rule already overshoots even";
        "here — it ignores graph structure entirely).  Any L >= 1 collapses";
        "G^∩∞ to self-loops: min_k jumps to n and the indistinguishability";
        "argument of Section III plays out — Algorithm 1's n distinct values";
        "are unavoidable, not a defect: no algorithm can do better under the";
        "eventual predicate, which is why Psrcs(k) must be perpetual.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E8 — Section V: consensus in well-behaved runs.                     *)
(* ------------------------------------------------------------------ *)

let run_e8 scale =
  let runs = runs_at scale ~quick:10 ~standard:80 ~full:400 in
  let table =
    Table.create [ "n"; "runs"; "consensus"; "mean last dec"; "bound 2n+1" ]
  in
  List.iter
    (fun n ->
      let results =
        Parallel.init runs (fun i ->
            let rng = rng_for (Printf.sprintf "E8-%d" n) i in
            let adv = Build.single_root rng ~n () in
            let r = Runner.run_kset adv in
            ( Metrics.distinct_decisions r.Runner.outcome,
              Option.value ~default:999 (Metrics.last_decision_round r.Runner.outcome) ))
      in
      let consensus =
        Array.fold_left (fun a (d, _) -> if d = 1 then a + 1 else a) 0 results
      in
      let mean_last =
        float_of_int (Array.fold_left (fun a (_, l) -> a + l) 0 results)
        /. float_of_int runs
      in
      Table.add_row table
        [
          string_of_int n;
          string_of_int runs;
          pct consensus runs;
          Table.cell_float mean_last;
          string_of_int ((2 * n) + 1);
        ])
    [ 6; 10; 16; 24 ];
  {
    id = "E8";
    title = "Section V — consensus whenever G^∩∞ has a single root component";
    table;
    notes =
      [
        "Runs are stable from round 1 with exactly one root component; the";
        "algorithm (which never mentions k) decides a single value in all of";
        "them.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E10 — exhaustive model checking of tiny systems.                    *)
(* ------------------------------------------------------------------ *)

let run_e10 scale =
  let table =
    Table.create
      [ "space"; "runs"; "Thm1 fail"; "paper (r>=n) fail"; "strict (r>n) fail";
        "repaired fail"; "non-term" ]
  in
  let row label (v : Exhaustive.verdict) =
    Table.add_row table
      [
        label;
        string_of_int v.Exhaustive.runs;
        string_of_int v.Exhaustive.theorem1_failures;
        string_of_int v.Exhaustive.agreement_failures;
        string_of_int v.Exhaustive.strict_agreement_failures;
        string_of_int v.Exhaustive.repaired_agreement_failures;
        string_of_int
          (v.Exhaustive.termination_failures
          + v.Exhaustive.repaired_termination_failures);
      ]
  in
  row "n=3, no prefix (all)" (Exhaustive.check_prefix_free ~n:3);
  if scale <> `Quick then begin
    row "n=3, every 1-round prefix" (Exhaustive.check_with_one_round_prefixes ~n:3);
    let graphs = Exhaustive.all_stable_graphs ~n:3 in
    let doubled = List.map (fun g -> [ g; Digraph.copy g ]) graphs in
    row "n=3, repeated 2-round prefixes" (Exhaustive.check ~n:3 ~prefixes:doubled);
    row "n=4, no prefix (all)" (Exhaustive.check_prefix_free ~n:4)
  end;
  if scale = `Full then begin
    (* n=4 with sampled 1-round prefixes: 64 random prefixes per check. *)
    let rng = rng_for "E10" 0 in
    let prefixes =
      List.init 64 (fun _ -> [ Gen.gnp rng 4 (Rng.float rng) ])
    in
    row "n=4, 64 sampled 1-round prefixes" (Exhaustive.check ~n:4 ~prefixes)
  end;
  {
    id = "E10";
    title = "Exhaustive model checking — every tiny run, three decision rules";
    table;
    notes =
      [
        "Every digraph with self-loops is a stable graph; a run is a prefix";
        "plus a stable graph.  For these spaces the sweep is exhaustive, so";
        "zeros are proofs over the space, not samples.  Findings: Theorem 1";
        "and validity/termination never fail; the paper's decision rule";
        "(r >= n reading) fails k-agreement in 20/4096 of the n=3 one-round-";
        "prefix runs (minimal counterexample: 3 processes, one transient";
        "edge); the strict r > n reading survives n=3 entirely but fails";
        "from n=4 with 2-round prefixes (random hunts: 39/40k at n=4);";
        "the confirm-n repair has no failure anywhere we looked.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E11 — predicates emerging from timing (the timing substrate).       *)
(* ------------------------------------------------------------------ *)

let run_e11 scale =
  let runs = runs_at scale ~quick:4 ~standard:20 ~full:100 in
  let n = 9 in
  let clusters = 3 in
  let assign = Array.init n (fun p -> p mod clusters) in
  let table =
    Table.create
      [ "timeout tau"; "runs"; "mean induced min_k"; "mean roots";
        "mean distinct decisions"; "late msgs/run" ]
  in
  List.iter
    (fun tau ->
      let results =
        Parallel.init runs (fun i ->
            (* intra-cluster links ~ U[0.1, 0.5); cross ~ U[0.5, 3.0) *)
            let seed = (i * 7919) + int_of_float (tau *. 1000.0) in
            let latency =
              Ssg_timing.Latency.clustered ~assign
                ~intra:(Ssg_timing.Latency.uniform ~seed ~lo:0.1 ~hi:0.5)
                ~inter:
                  (Ssg_timing.Latency.uniform ~seed:(seed + 1) ~lo:0.5 ~hi:3.0)
            in
            let r =
              Ssg_timing.Round_sync.run_kset
                ~timeouts:(Array.make n tau)
                ~inputs:(Array.init n (fun p -> p))
                ~latency ~max_rounds:(3 * n) ()
            in
            let skel =
              Ssg_skeleton.Skeleton.final r.Ssg_timing.Round_sync.trace
            in
            let mink = Ssg_predicates.Predicate.min_k
                (Ssg_predicates.Predicate.of_skeleton skel)
            in
            let roots =
              Analysis.root_count (Analysis.analyze skel)
            in
            let distinct =
              Array.to_list r.Ssg_timing.Round_sync.decisions
              |> List.filter_map
                   (Option.map (fun d -> d.Ssg_timing.Round_sync.value))
              |> List.sort_uniq compare |> List.length
            in
            (mink, roots, distinct, r.Ssg_timing.Round_sync.messages_late))
      in
      let meanf f =
        float_of_int (Array.fold_left (fun a x -> a + f x) 0 results)
        /. float_of_int runs
      in
      Table.add_row table
        [
          Table.cell_float tau;
          string_of_int runs;
          Table.cell_float (meanf (fun (m, _, _, _) -> m));
          Table.cell_float (meanf (fun (_, r, _, _) -> r));
          Table.cell_float (meanf (fun (_, _, d, _) -> d));
          Table.cell_float (meanf (fun (_, _, _, l) -> l));
        ])
    [ 0.3; 0.6; 1.0; 1.8; 3.2 ];
  {
    id = "E11";
    title =
      "Timing substrate — Psrcs(k) emerges from timeout vs latency";
    table;
    notes =
      [
        "9 processes in 3 clusters run Algorithm 1 on top of a discrete-";
        "event network: intra-cluster latency U[0.1,0.5), cross-cluster";
        "U[0.5,3.0); the round abstraction is rebuilt from per-process";
        "timers (Round_sync).  No predicate is assumed anywhere: the";
        "skeleton, min_k and the decision count are *emergent*.  Small";
        "timeouts isolate everyone (min_k -> n, one value per process);";
        "timeouts covering intra-cluster latency yield ~3 islands (k-set";
        "agreement, one value per cluster); timeouts above the worst cross-";
        "cluster latency yield consensus — the paper's framing of asynchrony";
        "as communication graphs, executed end to end.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E12 — per-round vs perpetual predicates are incomparable.           *)
(* ------------------------------------------------------------------ *)

let run_e12 scale =
  let runs = runs_at scale ~quick:5 ~standard:25 ~full:100 in
  let n = 8 in
  let table =
    Table.create
      [ "scenario"; "algorithm"; "runs"; "max distinct"; "all decided";
        "agreement ok" ]
  in
  let algorithms =
    [
      ("skeleton-kset", fun adv rounds -> Runner.run_kset ~rounds adv);
      ( "uniform-voting",
        fun adv rounds ->
          Runner.run_packed Ssg_baselines.Uniform_voting.packed ~rounds adv );
      ( "one-third-rule",
        fun adv rounds ->
          Runner.run_packed Ssg_baselines.One_third_rule.packed ~rounds adv );
      ( "floodmin(R=4)",
        fun adv rounds ->
          Runner.run_packed (Ssg_baselines.Floodmin.make ~rounds:4) ~rounds adv );
    ]
  in
  let scenarios =
    [
      (* per-round no-split holds forever; perpetual skeleton is empty
         (min_k = n): consensus achievable per round, nothing perpetual *)
      ( "rotating-kernel (no-split ∀r, min_k=n)",
        (fun i -> Build.rotating_kernel (rng_for "E12-a" i) ~n ~extra:0.3),
        1 (* the no-split family promises consensus *) );
      (* Psrcs(2) holds; no-split fails in every round *)
      ( "lower-bound k=2 (Psrcs(2), split ∀r)",
        (fun _ -> Build.lower_bound ~n ~k:2),
        2 );
      (* a fixed star: both predicate families hold (kernel every round,
         Psrcs(1)) — but the only shared process holds the largest value,
         so a fixed-horizon rule decides before minima can flood *)
      ( "fixed star, max-valued center (Psrcs(1))",
        (fun _ ->
          (* identity inputs: centering the star on process n-1 makes the
             only shared process carry the largest value *)
          Adversary.make ~name:"fixed-star" ~prefix:[||]
            ~stable:(Gen.star n ~center:(n - 1))),
        1 );
    ]
  in
  List.iter
    (fun (scenario, build, k_promise) ->
      List.iter
        (fun (alg_name, run_alg) ->
          let max_distinct = ref 0 and all_dec = ref 0 and ok = ref 0 in
          for i = 0 to runs - 1 do
            let adv = build i in
            let r = run_alg adv (4 * n) in
            let d = Metrics.distinct_decisions r.Runner.outcome in
            max_distinct := max !max_distinct d;
            if Metrics.termination r.Runner.outcome then incr all_dec;
            if d <= k_promise then incr ok
          done;
          Table.add_row table
            [
              scenario;
              alg_name;
              string_of_int runs;
              string_of_int !max_distinct;
              pct !all_dec runs;
              pct !ok runs;
            ])
        algorithms;
      Table.add_rule table)
    scenarios;
  {
    id = "E12";
    title =
      "Per-round HO predicates vs the paper's perpetual predicates —        incomparable";
    table;
    notes =
      [
        "Three runs probe the two predicate families.  Rotating kernel:";
        "no-split holds every round while the perpetual skeleton is empty";
        "(min_k = n) — the families' *values* diverge maximally, though";
        "outcomes happen to coincide here because the moving kernel floods";
        "the minimum before anyone decides.  Lower-bound run: Psrcs(2)";
        "holds, every round is split; Algorithm 1 and UV both produce 2";
        "values, OTR stalls forever (safe but not live: its two-thirds";
        "test never passes).  Fixed star with a max-valued center: both";
        "predicates hold, and the outcome-level separation appears —";
        "FloodMin's fixed horizon decides before minima can flood (many";
        "values, consensus broken), while UV and Algorithm 1, whose";
        "decisions are gated by their predicates' mechanisms rather than a";
        "round count, reach consensus on the center's value.  Neither";
        "predicate family subsumes the other; they measure different";
        "synchrony.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* A1 — ablations of Algorithm 1's mechanisms.                         *)
(* ------------------------------------------------------------------ *)

let run_a1 scale =
  let runs = runs_at scale ~quick:5 ~standard:40 ~full:200 in
  let table =
    Table.create
      [ "variant"; "runs"; "termination"; "agreement@min_k"; "monitor violations"; "mean last dec" ]
  in
  let variants =
    [
      ("paper", Kset_agreement.make_alg ());
      ("no purge (L24 off)", Kset_agreement.make_alg ~enable_purge:false ());
      ("no prune (L25 off)", Kset_agreement.make_alg ~enable_prune:false ());
      ("estimate from all (L27)", Kset_agreement.make_alg ~estimate_from_all:true ());
      ("decide early (no r>=n)", Kset_agreement.make_alg ~decide_early:true ());
      ("confirm n rounds (repair)", Kset_agreement.make_alg ~confirm_rounds:12 ());
    ]
  in
  List.iter
    (fun (label, variant) ->
      let term = ref 0 and agree = ref 0 and viol = ref 0 and lasts = ref 0 in
      for i = 0 to runs - 1 do
        let rng = rng_for ("A1-" ^ label) i in
        let n = 8 + Rng.int rng 5 in
        let adv =
          match Rng.int rng 3 with
          | 0 -> Build.block_sources rng ~n ~k:3 ~prefix_len:3 ~noise:0.4 ()
          | 1 -> Build.partitioned rng ~n ~blocks:2 ~prefix_len:3 ~noise:0.4 ()
          | _ ->
              Build.with_recurrent_noise rng
                (Build.partitioned rng ~n ~blocks:2 ())
                ~noise:0.3
        in
        (* Generous fixed horizon: the repaired rule needs ~n more rounds
           than the paper's, and ablated variants may be slower still. *)
        let rounds = Adversary.prefix_length adv + (4 * n) + 4 in
        let r = Runner.run_kset ~variant ~monitor:true ~rounds adv in
        if Metrics.termination r.Runner.outcome then incr term;
        if Metrics.k_agreement ~k:r.Runner.min_k r.Runner.outcome then incr agree;
        if r.Runner.violations <> [] then incr viol;
        lasts :=
          !lasts
          + Option.value ~default:rounds
              (Metrics.last_decision_round r.Runner.outcome)
      done;
      Table.add_row table
        [
          label;
          string_of_int runs;
          pct !term runs;
          pct !agree runs;
          pct !viol runs;
          Table.cell_float (float_of_int !lasts /. float_of_int runs);
        ])
    variants;
  {
    id = "A1";
    title = "Ablations — which mechanisms of Algorithm 1 are load-bearing";
    table;
    notes =
      [
        "Purge (Line 24) off: stale labels violate Observation 1/Lemma 7 —";
        "the monitors fire in essentially every noisy run.  Prune (Line 25)";
        "off: transient foreign nodes keep G_p from ever becoming strongly";
        "connected — termination is lost.  The Line 27 PT-restriction and";
        "the r >= n guard are required by the paper's proof, but neither";
        "ablation produced a k-agreement violation in this run class (the";
        "decide-early variant does, however, break the one-value-per-root";
        "correspondence more often, and both change which values win).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E9 — the Theorem 16 gap and the repaired decision rule.             *)
(* ------------------------------------------------------------------ *)

let run_e9 scale =
  let runs = runs_at scale ~quick:60 ~standard:500 ~full:2000 in
  let table =
    Table.create
      [ "n"; "runs"; "paper rule: runs > min_k"; "repaired rule: runs > min_k";
        "repaired non-termination"; "mean latency paper"; "mean latency repaired" ]
  in
  List.iter
    (fun n ->
      let results =
        Parallel.init runs (fun i ->
            let rng = rng_for (Printf.sprintf "E9-%d" n) i in
            let adv = zoo rng n in
            let mk = Adversary.min_k adv in
            let paper = Runner.run_kset adv in
            let repaired_alg = Kset_agreement.make_alg ~confirm_rounds:n () in
            let rounds = Adversary.prefix_length adv + (3 * n) + 4 in
            let repaired = Runner.run_kset ~variant:repaired_alg ~rounds adv in
            let viol r = Metrics.distinct_decisions r.Runner.outcome > mk in
            let last r =
              Option.value ~default:rounds
                (Metrics.last_decision_round r.Runner.outcome)
            in
            ( viol paper,
              viol repaired,
              not (Metrics.termination repaired.Runner.outcome),
              last paper,
              last repaired ))
      in
      let count f = Array.fold_left (fun a x -> if f x then a + 1 else a) 0 results in
      let mean f =
        float_of_int (Array.fold_left (fun a x -> a + f x) 0 results)
        /. float_of_int runs
      in
      Table.add_row table
        [
          string_of_int n;
          string_of_int runs;
          string_of_int (count (fun (v, _, _, _, _) -> v));
          string_of_int (count (fun (_, v, _, _, _) -> v));
          string_of_int (count (fun (_, _, nt, _, _) -> nt));
          Table.cell_float (mean (fun (_, _, _, l, _) -> l));
          Table.cell_float (mean (fun (_, _, _, _, l) -> l));
        ])
    [ 6; 8; 10 ];
  {
    id = "E9";
    title =
      "Reproduction finding — the Theorem 16 gap, and the n-round repair";
    table;
    notes =
      [
        "With noisy prefixes, purged-but-not-yet-expired labels can certify";
        "a strongly connected G_p whose edges are no longer timely, and the";
        "certifying process decides early (Line 28 passes at some r >= n";
        "with r - n + 1 < r_ST).  Lemma 15's proof applies Lemma 14 to";
        "C^(ri-n+1) although the lemma only equalizes estimates within C^n —";
        "exactly the step these runs break: decisions can exceed min_k.";
        "Repair: decide only after the strong-connectivity test has held for";
        "n consecutive rounds.  A certificate that survives a full purge";
        "window must contain a fresh (still timely) edge per node, so it";
        "reflects a true component.  Across every run we generated the";
        "repaired rule restored k-agreement at min_k, at a latency cost of";
        "about +n rounds and with termination preserved.  (The violations";
        "are rare — O(0.1%) of zoo runs — but deterministic: the test suite";
        "exhibits one by directed search and pins the repair on it.)";
      ];
  }

(* ------------------------------------------------------------------ *)

let all =
  [
    { id = "F1"; title = "Figure 1 reproduction"; paper_artifact = "Figure 1 (a)-(h)"; run = run_f1 };
    { id = "F2"; title = "Convergence dynamics"; paper_artifact = "Figure 1 mechanism, at scale (supplementary)"; run = run_f2 };
    { id = "E1"; title = "Root components bound"; paper_artifact = "Theorem 1"; run = run_e1 };
    { id = "E2"; title = "Tightness of Psrcs(k)"; paper_artifact = "Theorem 2"; run = run_e2 };
    { id = "E3"; title = "k-set agreement correctness"; paper_artifact = "Theorem 16"; run = run_e3 };
    { id = "E4"; title = "Termination latency"; paper_artifact = "Lemma 11"; run = run_e4 };
    { id = "E5"; title = "Message bit complexity"; paper_artifact = "Section V"; run = run_e5 };
    { id = "E6"; title = "Baseline comparison"; paper_artifact = "Context (ref. [5])"; run = run_e6 };
    { id = "E7"; title = "Eventual predicate too weak"; paper_artifact = "Section III"; run = run_e7 };
    { id = "E8"; title = "Consensus in well-behaved runs"; paper_artifact = "Section V"; run = run_e8 };
    { id = "E9"; title = "Theorem 16 gap and repair"; paper_artifact = "Lemma 15 / Theorem 16"; run = run_e9 };
    { id = "E10"; title = "Exhaustive tiny-system check"; paper_artifact = "Theorems 1, 2, 16"; run = run_e10 };
    { id = "E11"; title = "Predicates from timing"; paper_artifact = "Section I (motivation)"; run = run_e11 };
    { id = "E12"; title = "Per-round vs perpetual predicates"; paper_artifact = "Section V (duality discussion)"; run = run_e12 };
    { id = "A1"; title = "Mechanism ablations"; paper_artifact = "Design choices"; run = run_a1 };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.uppercase_ascii e.id = id) all

let csv (r : result) = Table.to_csv r.table

let run_to_csv exp scale = csv (exp.run scale)

let render exp (r : result) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" r.id r.title);
  Buffer.add_string buf (Printf.sprintf "   (reproduces: %s)\n\n" exp.paper_artifact);
  Buffer.add_string buf (Table.render r.table);
  if r.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf ("  " ^ n ^ "\n")) r.notes
  end;
  Buffer.contents buf

let run_and_render exp scale = render exp (exp.run scale)
