(** Plain-text visualization of runs.

    Two views, both written for terminals:

    - {!timeline}: one row per process, one column per round, showing when
      each process was in its final timely neighbourhood, when its
      approximation became strongly connected, and when it decided.
    - {!matrix}: an adjacency matrix of a graph with row = sender,
      column = receiver ([#] edge, [.] none) — handy for eyeballing
      skeletons at sizes where DOT is overkill. *)

open Ssg_graph
open Ssg_rounds
open Ssg_adversary

(** [matrix g] — adjacency matrix rendering of any digraph. *)
val matrix : Digraph.t -> string

(** [timeline adv ~rounds] executes Algorithm 1 on [adv] and renders per
    process and round:

    - [.] undecided, approximation not strongly connected,
    - [o] undecided, approximation strongly connected (certificate open),
    - [D] the decision round,
    - [=] decided earlier.

    The header row labels rounds mod 10. *)
val timeline : Adversary.t -> rounds:int -> string

(** [decisions outcome] — a compact per-process decision summary. *)
val decisions : Executor.outcome -> string
