(** Counterexample minimization for run descriptions.

    The Theorem 16 gap (E9) was found by random sweeps at n = 6 with
    4-round prefixes; the minimal witness is 3 processes and one transient
    edge.  This module automates that reduction: given a property that
    marks a run as "interesting" (e.g. "the paper's rule exceeds min_k"),
    [minimize] greedily simplifies the run while the property keeps
    holding — the same idea as QuickCheck shrinking, specialized to run
    descriptions:

    - drop whole prefix rounds,
    - delete non-self-loop edges from prefix graphs,
    - delete non-self-loop edges from the stable graph,
    - remove processes entirely (renumbering the rest).

    Passes repeat until a fixpoint.  The result is locally minimal: no
    single simplification step preserves the property.  Determinism:
    candidates are tried in a fixed order, so the same input shrinks to
    the same witness. *)

open Ssg_adversary

(** [true] = still interesting (keep shrinking towards it). *)
type property = Adversary.t -> bool

(** [minimize ?max_checks property adv] returns the shrunk run and the
    number of property evaluations spent.  [adv] itself must satisfy
    [property].  [max_checks] (default 10_000) bounds the work.
    @raise Invalid_argument if [property adv] is already false. *)
val minimize : ?max_checks:int -> property -> Adversary.t -> Adversary.t * int

(** [size adv] — the shrinking measure: [n·1000 + prefix·100 + edges]
    (fewer processes ≫ shorter prefix ≫ fewer edges). *)
val size : Adversary.t -> int
