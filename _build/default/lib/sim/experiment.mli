(** The experiment registry — one entry per figure/claim of the paper.

    Each experiment regenerates a table (and explanatory notes) from
    scratch; the benchmark executable prints all of them, the CLI can run
    any one by id.  See DESIGN.md's experiment index and EXPERIMENTS.md
    for the paper-vs-measured discussion.

    Experiments are deterministic: a fixed master seed is split per run.
    [scale] trades coverage for time: [`Quick] for CI smoke, [`Standard]
    for the bench executable, [`Full] for overnight sweeps. *)

open Ssg_util

type scale = [ `Quick | `Standard | `Full ]

type result = {
  id : string;
  title : string;
  table : Table.t;
  notes : string list;  (** observations to print under the table *)
}

type t = {
  id : string;  (** e.g. "F1", "E3", "A1" *)
  title : string;
  paper_artifact : string;  (** what in the paper this regenerates *)
  run : scale -> result;
}

(** All experiments, in presentation order: F1, E1..E8, A1. *)
val all : t list

(** [find id] looks an experiment up by case-insensitive id. *)
val find : string -> t option

(** [render exp result] renders an already-computed result as a printable
    block (header, table, notes). *)
val render : t -> result -> string

(** [csv result] renders an already-computed result's table as CSV (notes
    omitted) — for piping into plotting tools. *)
val csv : result -> string

(** [run_and_render exp scale] executes and renders in one step. *)
val run_and_render : t -> scale -> string

(** [run_to_csv exp scale] executes and renders CSV in one step. *)
val run_to_csv : t -> scale -> string
