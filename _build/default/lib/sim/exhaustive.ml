open Ssg_util
open Ssg_graph
open Ssg_skeleton
open Ssg_adversary
open Ssg_core

let off_diagonal_pairs n =
  let acc = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto 0 do
      if a <> b then acc := (a, b) :: !acc
    done
  done;
  !acc

let all_stable_graphs ~n =
  let pairs = Array.of_list (off_diagonal_pairs n) in
  let m = Array.length pairs in
  if m > 20 then invalid_arg "Exhaustive.all_stable_graphs: space too large";
  List.init (1 lsl m) (fun mask ->
      let g = Gen.self_loops_only n in
      Array.iteri
        (fun i (a, b) -> if mask land (1 lsl i) <> 0 then Digraph.add_edge g a b)
        pairs;
      g)

type verdict = {
  runs : int;
  theorem1_failures : int;
  agreement_failures : int;
  strict_agreement_failures : int;
  validity_failures : int;
  termination_failures : int;
  repaired_agreement_failures : int;
  repaired_termination_failures : int;
  counterexample : Adversary.t option;
}

let empty_verdict =
  {
    runs = 0;
    theorem1_failures = 0;
    agreement_failures = 0;
    strict_agreement_failures = 0;
    validity_failures = 0;
    termination_failures = 0;
    repaired_agreement_failures = 0;
    repaired_termination_failures = 0;
    counterexample = None;
  }

let merge a b =
  {
    runs = a.runs + b.runs;
    theorem1_failures = a.theorem1_failures + b.theorem1_failures;
    agreement_failures = a.agreement_failures + b.agreement_failures;
    strict_agreement_failures =
      a.strict_agreement_failures + b.strict_agreement_failures;
    validity_failures = a.validity_failures + b.validity_failures;
    termination_failures = a.termination_failures + b.termination_failures;
    repaired_agreement_failures =
      a.repaired_agreement_failures + b.repaired_agreement_failures;
    repaired_termination_failures =
      a.repaired_termination_failures + b.repaired_termination_failures;
    counterexample =
      (match a.counterexample with Some _ -> a.counterexample | None -> b.counterexample);
  }

let check_one ~n ~prefix stable =
  let adv =
    Adversary.make ~name:"exhaustive" ~prefix:(Array.of_list prefix) ~stable
  in
  let mk = Adversary.min_k adv in
  let roots =
    Analysis.root_count (Analysis.analyze (Adversary.stable_skeleton adv))
  in
  let paper = Runner.run_kset adv in
  let strict_alg = Kset_agreement.make_alg ~strict_guard:true () in
  let strict = Runner.run_kset ~variant:strict_alg adv in
  let repaired_alg = Kset_agreement.make_alg ~confirm_rounds:n () in
  let repaired =
    Runner.run_kset ~variant:repaired_alg
      ~rounds:(List.length prefix + (3 * n) + 4)
      adv
  in
  let too_many r = Metrics.distinct_decisions r.Runner.outcome > mk in
  let paper_bad = too_many paper in
  {
    runs = 1;
    theorem1_failures = (if roots > mk then 1 else 0);
    agreement_failures = (if paper_bad then 1 else 0);
    strict_agreement_failures = (if too_many strict then 1 else 0);
    validity_failures =
      (if Metrics.validity ~inputs:paper.Runner.inputs paper.Runner.outcome then 0 else 1);
    termination_failures =
      (if Metrics.termination paper.Runner.outcome then 0 else 1);
    repaired_agreement_failures = (if too_many repaired then 1 else 0);
    repaired_termination_failures =
      (if Metrics.termination repaired.Runner.outcome then 0 else 1);
    counterexample = (if paper_bad then Some adv else None);
  }

let check ~n ~prefixes =
  let stables = Array.of_list (all_stable_graphs ~n) in
  let prefixes = match prefixes with [] -> [ [] ] | ps -> ps in
  (* Parallelize over stable graphs; each worker folds its prefixes. *)
  let per_stable =
    Parallel.map
      (fun stable ->
        List.fold_left
          (fun acc prefix -> merge acc (check_one ~n ~prefix stable))
          empty_verdict prefixes)
      stables
  in
  Array.fold_left merge empty_verdict per_stable

let check_prefix_free ~n = check ~n ~prefixes:[ [] ]

let check_with_one_round_prefixes ~n =
  let prefixes = List.map (fun g -> [ g ]) (all_stable_graphs ~n) in
  check ~n ~prefixes

let pp_verdict fmt v =
  Format.fprintf fmt
    "@[<v>%d runs:@,\
    \  Theorem 1 (roots <= min_k) failures : %d@,\
    \  paper rule (r>=n) agreement failures: %d@,\
    \  strict guard (r>n) agreement fails  : %d@,\
    \  validity failures                   : %d@,\
    \  termination failures                : %d@,\
    \  repaired rule agreement failures    : %d@,\
    \  repaired rule termination failures  : %d@]"
    v.runs v.theorem1_failures v.agreement_failures
    v.strict_agreement_failures v.validity_failures
    v.termination_failures v.repaired_agreement_failures
    v.repaired_termination_failures
