open Ssg_graph
open Ssg_rounds
open Ssg_adversary
open Ssg_core

let matrix g =
  let n = Digraph.order g in
  let buf = Buffer.create ((n + 2) * (n + 4)) in
  Buffer.add_string buf "    ";
  for q = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%d" ((q + 1) mod 10))
  done;
  Buffer.add_string buf "  (column = receiver)\n";
  for p = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "p%-2d " (p + 1));
    for q = 0 to n - 1 do
      Buffer.add_char buf (if Digraph.mem_edge g p q then '#' else '.')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let timeline adv ~rounds =
  let n = Adversary.n adv in
  let module E = Executor.Make (Kset_agreement.Alg) in
  let cells = Array.make_matrix n rounds '.' in
  let first_decided = Array.make n None in
  let capture ~round ~graph:_ states =
    Array.iteri
      (fun p s ->
        let c =
          match Kset_agreement.decided s with
          | Some _ -> (
              match first_decided.(p) with
              | None ->
                  first_decided.(p) <- Some round;
                  'D'
              | Some _ -> '=')
          | None ->
              if Lgraph.is_strongly_connected (Kset_agreement.approx_of s)
              then 'o'
              else '.'
        in
        cells.(p).(round - 1) <- c)
      states
  in
  let cfg =
    E.config ~on_round:capture ~stop_when_all_decided:false
      ~inputs:(Array.init n (fun i -> i))
      ~graphs:(Adversary.graph adv) ~max_rounds:rounds ()
  in
  let outcome, _ = E.run cfg in
  let buf = Buffer.create (n * (rounds + 8)) in
  Buffer.add_string buf "     ";
  for r = 1 to rounds do
    Buffer.add_string buf (string_of_int (r mod 10))
  done;
  Buffer.add_string buf "  (round)\n";
  for p = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "p%-3d " (p + 1));
    Array.iter (Buffer.add_char buf) cells.(p);
    (match outcome.Executor.decisions.(p) with
    | Some { Executor.round; value } ->
        Buffer.add_string buf (Printf.sprintf "  decides %d @r%d" value round)
    | None -> Buffer.add_string buf "  undecided");
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf
    "legend: . searching   o certificate open   D decision   = decided\n";
  Buffer.contents buf

let decisions (o : Executor.outcome) =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun p d ->
      match d with
      | Some { Executor.round; value } ->
          Buffer.add_string buf
            (Printf.sprintf "p%d:%d@r%d " (p + 1) value round)
      | None -> Buffer.add_string buf (Printf.sprintf "p%d:? " (p + 1)))
    o.Executor.decisions;
  String.trim (Buffer.contents buf)
