open Ssg_graph
open Ssg_adversary

type property = Adversary.t -> bool

let graphs_of adv =
  let plen = Adversary.prefix_length adv in
  ( Array.init plen (fun i -> Adversary.graph adv (i + 1)),
    Adversary.graph adv (plen + 1) )

let rebuild ~prefix ~stable =
  Adversary.make ~name:"shrunk" ~prefix ~stable

let total_edges adv =
  let prefix, stable = graphs_of adv in
  Array.fold_left
    (fun acc g -> acc + Digraph.edge_count g)
    (Digraph.edge_count stable) prefix

let size adv =
  (Adversary.n adv * 1000) + (Adversary.prefix_length adv * 100) + total_edges adv

(* Remove process [p], renumbering the remaining ones. *)
let remove_process g p =
  let n = Digraph.order g in
  let small = Digraph.create (n - 1) in
  let f v = if v < p then v else v - 1 in
  Digraph.iter_edges g (fun a b ->
      if a <> p && b <> p then Digraph.add_edge small (f a) (f b));
  small

(* Candidate simplifications, most aggressive first. *)
let candidates adv =
  let prefix, stable = graphs_of adv in
  let n = Digraph.order stable in
  let drop_process =
    if n <= 1 then []
    else
      List.init n (fun p () ->
          rebuild
            ~prefix:(Array.map (fun g -> remove_process g p) prefix)
            ~stable:(remove_process stable p))
  in
  let drop_prefix_round =
    List.init (Array.length prefix) (fun i () ->
        let keep =
          Array.of_list
            (List.filteri (fun j _ -> j <> i) (Array.to_list prefix))
        in
        rebuild ~prefix:keep ~stable)
  in
  let drop_edge_in graph_index g =
    List.filter_map
      (fun (a, b) ->
        if a = b then None
        else
          Some
            (fun () ->
              let g' = Digraph.copy g in
              Digraph.remove_edge g' a b;
              match graph_index with
              | None -> rebuild ~prefix ~stable:g'
              | Some i ->
                  let prefix' = Array.copy prefix in
                  prefix'.(i) <- g';
                  rebuild ~prefix:prefix' ~stable))
      (Digraph.edges g)
  in
  let prefix_edges =
    List.concat
      (List.mapi (fun i g -> drop_edge_in (Some i) g) (Array.to_list prefix))
  in
  let stable_edges = drop_edge_in None stable in
  drop_process @ drop_prefix_round @ prefix_edges @ stable_edges

let minimize ?(max_checks = 10_000) property adv =
  if not (property adv) then
    invalid_arg "Shrink.minimize: input does not satisfy the property";
  let checks = ref 0 in
  let rec pass current =
    let improved = ref None in
    let rec try_candidates = function
      | [] -> ()
      | mk :: rest ->
          if !checks < max_checks && !improved = None then begin
            incr checks;
            (* candidate construction or evaluation may reject a malformed
               run (Adversary.make validation); treat that as "not
               interesting". *)
            (match
               try
                 let candidate = mk () in
                 if property candidate then Some candidate else None
               with Invalid_argument _ -> None
             with
            | Some better when size better < size current ->
                improved := Some better
            | _ -> ());
            try_candidates rest
          end
    in
    try_candidates (candidates current);
    match !improved with Some better -> pass better | None -> current
  in
  let result = pass adv in
  (result, !checks)
