(** One-stop execution of an algorithm against a run description.

    A [report] packages everything the experiments and tests ask about a
    single run: the executor outcome, the exact stable skeleton and its
    root structure, the run's minimal [k], and (for monitored runs of
    Algorithm 1) the lemma-checker verdicts. *)

open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_adversary

type report = {
  adversary : string;
  algorithm : string;
  n : int;
  inputs : int array;
  outcome : Executor.outcome;
  skeleton : Digraph.t;  (** the exact [G^∩∞] of the run description *)
  analysis : Analysis.t;  (** SCC/root structure of [skeleton] *)
  min_k : int;  (** least [k] such that the run satisfies [Psrcs(k)] *)
  violations : string list;
      (** monitor verdicts; [[]] for unmonitored runs too *)
}

(** [distinct_inputs n] is the canonical worst case: [n] pairwise distinct
    proposal values [0 .. n-1] (process [p] proposes [p]). *)
val distinct_inputs : int -> int array

(** [shuffled_inputs rng n] — a random permutation of [0 .. n-1]. *)
val shuffled_inputs : Ssg_util.Rng.t -> int -> int array

(** [default_rounds adv] is {!Adversary.decision_horizon}: enough for
    Algorithm 1 to terminate by Lemma 11. *)
val default_rounds : Adversary.t -> int

(** [run_kset ?variant ?inputs ?rounds ?monitor adv] executes Algorithm 1
    (or an ablated [variant] from {!Ssg_core.Kset_agreement.make_alg}).
    With [monitor:true] (default [false]) the lemma checkers shadow the
    run; the final skeleton is treated as exact iff the run executed past
    the adversary's prefix. *)
val run_kset :
  ?variant:(module Round_model.ALGORITHM
              with type state = Ssg_core.Kset_agreement.state) ->
  ?inputs:int array ->
  ?rounds:int ->
  ?monitor:bool ->
  Adversary.t ->
  report

(** [run_packed alg ?inputs ?rounds adv] executes any packed algorithm
    (baselines) without monitoring. *)
val run_packed :
  Round_model.packed ->
  ?inputs:int array ->
  ?rounds:int ->
  Adversary.t ->
  report
