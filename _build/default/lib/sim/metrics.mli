(** Derived measurements and correctness verdicts over run reports.

    The three k-set agreement properties become boolean verdicts here;
    batch helpers aggregate whole sweeps for the experiment tables. *)

open Ssg_rounds

(** [distinct_decisions o] — how many different values were decided. *)
val distinct_decisions : Executor.outcome -> int

(** [first_decision_round o] / [last_decision_round o]. *)
val first_decision_round : Executor.outcome -> int option

val last_decision_round : Executor.outcome -> int option

(** [k_agreement ~k o] — at most [k] distinct decision values among
    deciders (vacuously true when nobody decided). *)
val k_agreement : k:int -> Executor.outcome -> bool

(** [validity ~inputs o] — every decided value was proposed. *)
val validity : inputs:int array -> Executor.outcome -> bool

(** [termination o] — every process decided. *)
val termination : Executor.outcome -> bool

(** [decisions_per_root r] — for Algorithm 1's theory: the number of
    distinct decision values never exceeds the number of root components
    of the stable skeleton (the paper's one-to-one correspondence).
    Returns [(distinct, roots)]. *)
val decisions_per_root : Runner.report -> int * int

(** [verdict ~k r] — all three properties at level [k], as a compact
    record. *)
type verdict = {
  agreement : bool;
  validity : bool;
  termination : bool;
  monitors_clean : bool;
}

val verdict : k:int -> Runner.report -> verdict

val all_ok : verdict -> bool

(** Batch aggregation. *)

(** [count_if f rs] — how many reports satisfy [f]. *)
val count_if : (Runner.report -> bool) -> Runner.report list -> int

(** [max_over f rs] / [mean_over f rs] over integer projections.
    @raise Invalid_argument on empty batches. *)
val max_over : (Runner.report -> int) -> Runner.report list -> int

val mean_over : (Runner.report -> int) -> Runner.report list -> float
